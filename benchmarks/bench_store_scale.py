"""Store scaling: O(delta) format-2 appends vs the format-1 rewrite.

The format-1 store made every ``save_cache`` a locked read-merge-rewrite
of one monolithic JSON file, so persisting the handful of rows a run just
computed cost O(total store size) — exactly the wrong scaling for process
fleets flushing into one shared directory.  Store format 2 appends only
the dirty delta to per-shard segment logs.

This benchmark pins the scaling claim: with a pre-existing store of
``size`` rows, it times persisting a fixed 256-row delta

* **format 2** — :meth:`~repro.runtime.store.RuntimeStore.save_cache`
  against a compacted store (auto-compaction disabled so the append cost
  is measured in isolation), and
* **format 1** — a faithful replica of the seed's read-merge-rewrite
  against a monolithic file of the same ``size`` rows,

then asserts the format-2 cost stays roughly flat across store sizes
while the rewrite grows linearly (≥10× slower by ~100k rows).  A
round-trip check guards against benchmarking a store that drops rows.

**Warm-start load scaling** (the read-side claim): against stores of up
to 1M+ rows, loading a fixed ~16-key population is timed through all
three ``load_cache_into`` read modes — ``full`` (whole-store replay,
O(store)), ``selective`` (only the shards the keys hash to) and
``index`` (per-shard index point lookups, O(population)).  The bench
asserts the three modes return bit-identical rows, that the index path
stays flat as the store grows 100×, and reports the index hit rate.

Results land in ``BENCH_store.json`` at the repo root.  Run directly
(``python benchmarks/bench_store_scale.py``) or via pytest
(``pytest benchmarks/bench_store_scale.py``).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Dict, Tuple

from repro.engine.cache import IndicatorCache
from repro.proxies.base import ProxyConfig
from repro.runtime.store import (
    RuntimeStore,
    _decode_key,
    _encode_key,
    cache_fingerprint,
)
from repro.searchspace.network import MacroConfig
from repro.utils.timing import Timer, format_duration

STORE_SIZES = (1_000, 10_000, 100_000)
DELTA_ROWS = 256
#: Read-side scaling: stores of these sizes, a fixed small population.
LOAD_STORE_SIZES = (10_000, 100_000, 1_000_000)
LOAD_SHARDS = 64          # a fleet-scale shard count
LOAD_POPULATION = 16      # keys one warm-start asks for
LOAD_FILL_BATCH = 100_000  # rows per save while building big stores
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _key(i: int) -> Tuple:
    # Realistic key shape: kind, canonical index, repeat, config tuple.
    return ("ntk", i, 1, (4, 1, 8, 10, 8, 32))


def _filled_cache(start: int, count: int) -> IndicatorCache:
    cache = IndicatorCache()
    for i in range(start, start + count):
        cache.put(_key(i), float(i) * 1.5)
    return cache


def _format1_rewrite_save(path: Path, fingerprint: Dict,
                          cache: IndicatorCache) -> int:
    """The seed store's save algorithm: read the whole monolithic file,
    merge the cache in, sort, rewrite — O(total store size)."""
    entries = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("fingerprint") == fingerprint:
            for encoded_key, value in payload.get("entries", []):
                entries[_decode_key(encoded_key)] = value
    for key, value in cache.items():
        entries[key] = value
    ordered = sorted(entries.items(), key=lambda kv: repr(kv[0]))
    payload = {
        "fingerprint": fingerprint,
        "entries": [[_encode_key(key), value] for key, value in ordered],
    }
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return len(ordered)


def run_load_scale() -> Dict:
    """Warm-start read cost for a fixed population vs store size."""
    proxy_config = ProxyConfig()
    macro_config = MacroConfig.full()
    fingerprint = cache_fingerprint(proxy_config, macro_config)

    load_points = []
    bit_identical = True
    with tempfile.TemporaryDirectory() as tmp:
        for size in LOAD_STORE_SIZES:
            root = Path(tmp) / f"load_store_{size}"
            store = RuntimeStore(root, shards=LOAD_SHARDS,
                                 auto_compact_segments=None)
            # Build in batches (one cache of 1M rows would be most of a
            # GB of tuples); compact once, so reads hit per-shard bases
            # + fresh indexes — the steady state of a long-lived store.
            filled = 0
            while filled < size:
                batch = min(LOAD_FILL_BATCH, size - filled)
                store.save_cache(_filled_cache(filled, batch), fingerprint)
                filled += batch
            store.compact_cache(fingerprint)

            # A population's worth of keys, spread across the store.
            stride = size // LOAD_POPULATION
            population = [_key(j * stride) for j in range(LOAD_POPULATION)]

            timings = {}
            results = {}
            for mode in ("full", "selective", "index"):
                target = IndicatorCache()
                with Timer() as timer:
                    loaded = store.load_cache_into(target, fingerprint,
                                                   keys=population,
                                                   read_mode=mode)
                assert loaded == LOAD_POPULATION, (mode, loaded)
                timings[mode] = timer.elapsed
                results[mode] = dict(target.items())
            stats = store.last_load_stats  # the index-mode load's stats
            if not (results["full"] == results["selective"]
                    == results["index"]):
                bit_identical = False

            load_points.append({
                "store_size": size,
                "requested": LOAD_POPULATION,
                "full_load_seconds": timings["full"],
                "selective_load_seconds": timings["selective"],
                "index_load_seconds": timings["index"],
                "index_hit_rate": (stats["index_hits"]
                                   / max(stats["requested"], 1)),
                "selective_speedup": (timings["full"]
                                      / max(timings["selective"], 1e-9)),
                "index_speedup": (timings["full"]
                                  / max(timings["index"], 1e-9)),
            })

    index_flat = (load_points[-1]["index_load_seconds"]
                  / max(load_points[0]["index_load_seconds"], 1e-9))
    return {
        "load_store_sizes": list(LOAD_STORE_SIZES),
        "load_shards": LOAD_SHARDS,
        "load_population": LOAD_POPULATION,
        "load_points": load_points,
        # Index-mode load time at the largest store over the smallest:
        # ~1.0 means warm-start latency is O(population), flat in store
        # size across a 100x growth.
        "index_load_flatness_ratio": index_flat,
        "selective_load_speedup_at_largest":
            load_points[-1]["selective_speedup"],
        "index_load_speedup_at_largest": load_points[-1]["index_speedup"],
        "index_hit_rate": load_points[-1]["index_hit_rate"],
        "read_paths_bit_identical": bit_identical,
    }


def run_store_scale() -> Dict:
    proxy_config = ProxyConfig()
    macro_config = MacroConfig.full()
    fingerprint = cache_fingerprint(proxy_config, macro_config)
    legacy_fingerprint = dict(fingerprint, format=1)

    points = []
    with tempfile.TemporaryDirectory() as tmp:
        for size in STORE_SIZES:
            root = Path(tmp) / f"store_{size}"
            store = RuntimeStore(root, auto_compact_segments=None)

            # Pre-existing state: `size` rows compacted into the base.
            pre = _filled_cache(0, size)
            store.save_cache(pre, fingerprint)
            store.compact_cache(fingerprint)

            delta = _filled_cache(size, DELTA_ROWS)
            with Timer() as format2_timer:
                appended = store.save_cache(delta, fingerprint)
            assert appended == DELTA_ROWS

            # Round-trip guard: the appended rows actually persisted.
            check = IndicatorCache()
            loaded = store.load_cache_into(check, fingerprint, strict=True)
            assert loaded == size + DELTA_ROWS

            # Format-1 baseline: same pre-existing size, same delta,
            # via the monolithic read-merge-rewrite.
            legacy_path = root / "format1_cache.json"
            _format1_rewrite_save(legacy_path, legacy_fingerprint, pre)
            with Timer() as format1_timer:
                _format1_rewrite_save(legacy_path, legacy_fingerprint,
                                      delta)

            points.append({
                "store_size": size,
                "delta_rows": DELTA_ROWS,
                "format2_save_seconds": format2_timer.elapsed,
                "format1_save_seconds": format1_timer.elapsed,
                "rewrite_over_append":
                    format1_timer.elapsed / max(format2_timer.elapsed,
                                                1e-9),
            })

    flat_ratio = (points[-1]["format2_save_seconds"]
                  / max(points[0]["format2_save_seconds"], 1e-9))
    result = {
        "store_sizes": list(STORE_SIZES),
        "delta_rows": DELTA_ROWS,
        "points": points,
        # Format-2 append cost at the largest store over the smallest:
        # ~1.0 means save cost is independent of store size.
        "format2_flatness_ratio": flat_ratio,
        "speedup_at_largest": points[-1]["rewrite_over_append"],
    }
    result.update(run_load_scale())
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_store_scale(benchmark):
    result = benchmark.pedantic(run_store_scale, rounds=1, iterations=1)
    _report(result)
    # The acceptance criterion: appending a fixed delta to a ~100k-row
    # store beats the monolithic rewrite by >= 10x...
    assert result["speedup_at_largest"] >= 10.0
    # ...and append cost is roughly flat in store size (generous bound:
    # the rewrite grows ~100x over the same range).
    assert result["format2_flatness_ratio"] <= 10.0
    # Read side: the three read modes must agree bit-for-bit...
    assert result["read_paths_bit_identical"] is True
    # ...every requested key must come off the index (fresh after
    # compaction; hit rate 1.0 means zero replay fallbacks)...
    assert result["index_hit_rate"] == 1.0
    # ...and indexed warm-start latency must stay flat while the store
    # grows 100x (generous bound — full replay grows ~100x; a truly
    # store-size-dependent index path would blow far past this).
    assert result["index_load_flatness_ratio"] <= 10.0
    # Selective replay reads shards_touched/shards of the store; with 16
    # keys over 64 shards that is at most a quarter, so even the weakest
    # selective win must beat full replay clearly at 1M rows.
    assert result["selective_load_speedup_at_largest"] >= 2.0


def _report(result: Dict) -> None:
    print()
    for point in result["points"]:
        print(f"store {point['store_size']:>9,} rows | "
              f"append {point['delta_rows']}: "
              f"{format_duration(point['format2_save_seconds'])}"
              f" | format-1 rewrite: "
              f"{format_duration(point['format1_save_seconds'])}"
              f" | {point['rewrite_over_append']:.1f}x")
    print(f"format-2 flatness ratio : "
          f"{result['format2_flatness_ratio']:.2f} "
          f"(largest/smallest store)")
    print(f"speedup at largest      : "
          f"{result['speedup_at_largest']:.1f}x")
    print()
    for point in result["load_points"]:
        print(f"store {point['store_size']:>9,} rows | "
              f"load {point['requested']} keys | "
              f"full: {format_duration(point['full_load_seconds'])} | "
              f"selective: "
              f"{format_duration(point['selective_load_seconds'])} "
              f"({point['selective_speedup']:.1f}x) | "
              f"index: {format_duration(point['index_load_seconds'])} "
              f"({point['index_speedup']:.1f}x, "
              f"hit rate {point['index_hit_rate']:.2f})")
    print(f"index flatness ratio    : "
          f"{result['index_load_flatness_ratio']:.2f} "
          f"(largest/smallest store)")
    print(f"read paths bit-identical: "
          f"{result['read_paths_bit_identical']}")
    print(f"written                 : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_store_scale())
