"""Store scaling: O(delta) format-2 appends vs the format-1 rewrite.

The format-1 store made every ``save_cache`` a locked read-merge-rewrite
of one monolithic JSON file, so persisting the handful of rows a run just
computed cost O(total store size) — exactly the wrong scaling for process
fleets flushing into one shared directory.  Store format 2 appends only
the dirty delta to per-shard segment logs.

This benchmark pins the scaling claim: with a pre-existing store of
``size`` rows, it times persisting a fixed 256-row delta

* **format 2** — :meth:`~repro.runtime.store.RuntimeStore.save_cache`
  against a compacted store (auto-compaction disabled so the append cost
  is measured in isolation), and
* **format 1** — a faithful replica of the seed's read-merge-rewrite
  against a monolithic file of the same ``size`` rows,

then asserts the format-2 cost stays roughly flat across store sizes
while the rewrite grows linearly (≥10× slower by ~100k rows).  A
round-trip check guards against benchmarking a store that drops rows.

Results land in ``BENCH_store.json`` at the repo root.  Run directly
(``python benchmarks/bench_store_scale.py``) or via pytest
(``pytest benchmarks/bench_store_scale.py``).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Dict, Tuple

from repro.engine.cache import IndicatorCache
from repro.proxies.base import ProxyConfig
from repro.runtime.store import (
    RuntimeStore,
    _decode_key,
    _encode_key,
    cache_fingerprint,
)
from repro.searchspace.network import MacroConfig
from repro.utils.timing import Timer, format_duration

STORE_SIZES = (1_000, 10_000, 100_000)
DELTA_ROWS = 256
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _key(i: int) -> Tuple:
    # Realistic key shape: kind, canonical index, repeat, config tuple.
    return ("ntk", i, 1, (4, 1, 8, 10, 8, 32))


def _filled_cache(start: int, count: int) -> IndicatorCache:
    cache = IndicatorCache()
    for i in range(start, start + count):
        cache.put(_key(i), float(i) * 1.5)
    return cache


def _format1_rewrite_save(path: Path, fingerprint: Dict,
                          cache: IndicatorCache) -> int:
    """The seed store's save algorithm: read the whole monolithic file,
    merge the cache in, sort, rewrite — O(total store size)."""
    entries = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("fingerprint") == fingerprint:
            for encoded_key, value in payload.get("entries", []):
                entries[_decode_key(encoded_key)] = value
    for key, value in cache.items():
        entries[key] = value
    ordered = sorted(entries.items(), key=lambda kv: repr(kv[0]))
    payload = {
        "fingerprint": fingerprint,
        "entries": [[_encode_key(key), value] for key, value in ordered],
    }
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return len(ordered)


def run_store_scale() -> Dict:
    proxy_config = ProxyConfig()
    macro_config = MacroConfig.full()
    fingerprint = cache_fingerprint(proxy_config, macro_config)
    legacy_fingerprint = dict(fingerprint, format=1)

    points = []
    with tempfile.TemporaryDirectory() as tmp:
        for size in STORE_SIZES:
            root = Path(tmp) / f"store_{size}"
            store = RuntimeStore(root, auto_compact_segments=None)

            # Pre-existing state: `size` rows compacted into the base.
            pre = _filled_cache(0, size)
            store.save_cache(pre, fingerprint)
            store.compact_cache(fingerprint)

            delta = _filled_cache(size, DELTA_ROWS)
            with Timer() as format2_timer:
                appended = store.save_cache(delta, fingerprint)
            assert appended == DELTA_ROWS

            # Round-trip guard: the appended rows actually persisted.
            check = IndicatorCache()
            loaded = store.load_cache_into(check, fingerprint, strict=True)
            assert loaded == size + DELTA_ROWS

            # Format-1 baseline: same pre-existing size, same delta,
            # via the monolithic read-merge-rewrite.
            legacy_path = root / "format1_cache.json"
            _format1_rewrite_save(legacy_path, legacy_fingerprint, pre)
            with Timer() as format1_timer:
                _format1_rewrite_save(legacy_path, legacy_fingerprint,
                                      delta)

            points.append({
                "store_size": size,
                "delta_rows": DELTA_ROWS,
                "format2_save_seconds": format2_timer.elapsed,
                "format1_save_seconds": format1_timer.elapsed,
                "rewrite_over_append":
                    format1_timer.elapsed / max(format2_timer.elapsed,
                                                1e-9),
            })

    flat_ratio = (points[-1]["format2_save_seconds"]
                  / max(points[0]["format2_save_seconds"], 1e-9))
    result = {
        "store_sizes": list(STORE_SIZES),
        "delta_rows": DELTA_ROWS,
        "points": points,
        # Format-2 append cost at the largest store over the smallest:
        # ~1.0 means save cost is independent of store size.
        "format2_flatness_ratio": flat_ratio,
        "speedup_at_largest": points[-1]["rewrite_over_append"],
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_store_scale(benchmark):
    result = benchmark.pedantic(run_store_scale, rounds=1, iterations=1)
    _report(result)
    # The acceptance criterion: appending a fixed delta to a ~100k-row
    # store beats the monolithic rewrite by >= 10x...
    assert result["speedup_at_largest"] >= 10.0
    # ...and append cost is roughly flat in store size (generous bound:
    # the rewrite grows ~100x over the same range).
    assert result["format2_flatness_ratio"] <= 10.0


def _report(result: Dict) -> None:
    print()
    for point in result["points"]:
        print(f"store {point['store_size']:>7,} rows | "
              f"append {point['delta_rows']}: "
              f"{format_duration(point['format2_save_seconds'])}"
              f" | format-1 rewrite: "
              f"{format_duration(point['format1_save_seconds'])}"
              f" | {point['rewrite_over_append']:.1f}x")
    print(f"format-2 flatness ratio : "
          f"{result['format2_flatness_ratio']:.2f} "
          f"(largest/smallest store)")
    print(f"speedup at largest      : "
          f"{result['speedup_at_largest']:.1f}x")
    print(f"written                 : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_store_scale())
