"""Table I — Results on CIFAR-10.

Regenerates the paper's headline table::

    NAS Frameworks | FLOPs (M) | Params (M) | Speedup | Search Time | ACC
    µNAS [2]       | -         | 0.014      | -       | 552         | 86.49
    TE-NAS [3]     | 188.66    | 1.317      | 1       | 0.43        | 93.78
    Ours           | 51.04     | 0.372      | 3.23x   | 0.43        | 93.88

Shape requirements (substrate-independent): MicroNAS finds a model with a
fraction of TE-NAS's FLOPs/params and >1.5x lower MCU latency at similar
surrogate accuracy; the train-based µNAS baseline costs orders of magnitude
more search time at lower accuracy.
"""

from __future__ import annotations

import pytest

from repro.eval.benchconfig import search_proxy_config
from repro.benchdata import SurrogateModel
from repro.proxies.flops import count_flops, count_params
from repro.search import (
    ConstrainedEvolutionarySearch,
    EvolutionConfig,
    HardwareConstraints,
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
    TENASSearch,
)
from repro.utils import format_table

#: Latency indicator weight used for the headline MicroNAS row.
MICRONAS_LATENCY_WEIGHT = 0.5

#: µNAS row: tight µNAS-style deployment constraints (tiny models).
MUNAS_CONSTRAINTS = HardwareConstraints(max_params=0.15e6)
MUNAS_EVOLUTION = EvolutionConfig(population_size=50, sample_size=10, cycles=600)


def run_table1(latency_estimator):
    surrogate = SurrogateModel()
    proxy_config = search_proxy_config()

    tenas = TENASSearch(proxy_config=proxy_config, seed=0).search()
    objective = HybridObjective(
        proxy_config=proxy_config,
        weights=ObjectiveWeights(latency=MICRONAS_LATENCY_WEIGHT),
        latency_estimator=latency_estimator,
    )
    micronas = MicroNASSearch(objective, seed=0).search()
    munas = ConstrainedEvolutionarySearch(
        MUNAS_EVOLUTION, constraints=MUNAS_CONSTRAINTS, seed=0
    ).search()

    def row(name, result):
        genotype = result.genotype
        latency = latency_estimator.estimate_ms(genotype)
        return {
            "name": name,
            "flops_m": count_flops(genotype) / 1e6,
            "params_m": count_params(genotype) / 1e6,
            "latency_ms": latency,
            "search_hours": result.search_gpu_hours,
            "acc": surrogate.mean_accuracy(genotype, "cifar10"),
        }

    rows = [
        row("uNAS (evolution)", munas),
        row("TE-NAS", tenas),
        row("MicroNAS (ours)", micronas),
    ]
    reference_latency = rows[1]["latency_ms"]
    for entry in rows:
        entry["speedup"] = reference_latency / entry["latency_ms"]
    return rows


@pytest.fixture(scope="module")
def table1_rows(latency_estimator):
    return run_table1(latency_estimator)


def test_table1_cifar10(benchmark, latency_estimator):
    rows = benchmark.pedantic(
        lambda: run_table1(latency_estimator), rounds=1, iterations=1
    )
    print()
    print(format_table(
        [
            [r["name"], f"{r['flops_m']:.2f}", f"{r['params_m']:.3f}",
             f"{r['speedup']:.2f}x", f"{r['search_hours']:.3f}",
             f"{r['acc']:.2f}"]
            for r in rows
        ],
        headers=["NAS Framework", "FLOPs (M)", "Params (M)", "Speedup",
                 "Search Time (h)", "ACC"],
        title="Table I: Results on CIFAR-10 (surrogate benchmark)",
    ))
    munas, tenas, micronas = rows
    # Shape: MicroNAS much cheaper than TE-NAS at similar accuracy.
    assert micronas["flops_m"] < 0.6 * tenas["flops_m"]
    assert micronas["params_m"] < 0.7 * tenas["params_m"]
    assert micronas["speedup"] > 1.5
    assert micronas["acc"] > tenas["acc"] - 3.0
    # Shape: train-based baseline pays orders of magnitude more search time.
    assert munas["search_hours"] > 100 * tenas["search_hours"]
    assert munas["search_hours"] > 100 * micronas["search_hours"]
    # Shape: constrained µNAS models are tiny and less accurate.
    assert munas["params_m"] < 0.20
    assert munas["acc"] < tenas["acc"]
