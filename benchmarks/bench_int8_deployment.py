"""Extension A8 — the int8 deployment story on the paper's board.

The paper deploys on an STM32F746ZG (1 MB flash, 320 KB SRAM).  At
float32, many NAS-Bench-201 networks cannot fit that flash; real MCU
deployments quantize to int8.  This harness measures, over an
architecture sample, what quantization buys on the paper's board:

* latency speedup from int8 CMSIS-NN-style kernels (cheaper MACs,
  quartered memory traffic, requantization epilogue),
* the fraction of architectures whose *flash* footprint fits at int8 vs
  float32,
* planned-arena SRAM fit at both precisions.

Shapes that must hold: every architecture speeds up (>1.2x mean), int8
strictly increases the deployable fraction, and the weight SQNR stays
above 25 dB (accuracy-safe weight quantization).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.deploy import deployment_report
from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.hardware.memory import MemoryEstimator
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

NUM_ARCHS = 12


def run_int8_study():
    config = MacroConfig.full()
    archs = NasBench201Space().sample(NUM_ARCHS, rng=808)
    f32_estimator = LatencyEstimator(NUCLEO_F746ZG, config=config)
    i8_estimator = LatencyEstimator(NUCLEO_F746ZG, config=config,
                                    precision="int8")
    f32_memory = MemoryEstimator(config, element_bytes=4)
    reports = []
    f32_flash_fits = []
    for genotype in archs:
        reports.append(deployment_report(
            genotype, NUCLEO_F746ZG, config=config,
            float_estimator=f32_estimator, int8_estimator=i8_estimator,
        ))
        f32_flash = f32_memory.report(genotype).flash_bytes
        f32_flash_fits.append(f32_flash <= NUCLEO_F746ZG.flash_bytes)
    return archs, reports, f32_flash_fits


def test_int8_deployment(benchmark):
    archs, reports, f32_flash_fits = benchmark.pedantic(
        run_int8_study, rounds=1, iterations=1
    )
    rows = []
    for rep, f32_fit in zip(reports, f32_flash_fits):
        rows.append([
            rep.arch_str[:34] + "...",
            f"{rep.latency_float32_ms:.0f}",
            f"{rep.latency_int8_ms:.0f}",
            f"{rep.int8_speedup:.2f}x",
            f"{rep.flash_int8_bytes / 1024:.0f}",
            "yes" if f32_fit else "NO",
            "yes" if rep.deployable else "NO",
            f"{rep.weight_sqnr_db:.0f}",
        ])
    print()
    print(format_table(
        rows,
        headers=["architecture", "f32 ms", "int8 ms", "speedup",
                 "int8 flash KB", "fits @f32", "fits @int8", "SQNR dB"],
        title="A8: int8 deployment on nucleo-f746zg",
    ))
    speedups = [r.int8_speedup for r in reports]
    int8_fits = [r.deployable for r in reports]
    print(f"mean speedup {np.mean(speedups):.2f}x; deployable: "
          f"{sum(f32_flash_fits)}/{len(archs)} at float32 flash, "
          f"{sum(int8_fits)}/{len(archs)} fully at int8")

    # Shape 1: quantization always pays on this board.
    assert min(speedups) > 1.0
    assert np.mean(speedups) > 1.2
    # Shape 2: int8 strictly widens deployability (the motivating claim).
    assert sum(int8_fits) > sum(f32_flash_fits)
    # Shape 3: weight quantization is accuracy-safe.
    assert all(r.weight_sqnr_db > 25.0 for r in reports)
    # Shape 4: arena relation is exact.
    assert all(r.arena_int8_bytes * 4 == r.arena_float32_bytes
               for r in reports)
