"""Distributed fleet: worker scaling and elastic-membership recovery.

Two measurements, both writing ``BENCH_fleet.json``:

1. **Worker scaling** — a fixed set of sleep-padded chunks is pushed
   through a :class:`~repro.runtime.fleet.FleetPool` with 1, 2 and 4
   forked local workers leasing over the real TCP socket path.  Sleeps
   release the GIL and burn no CPU, so the fan-out is genuinely
   concurrent even on a small CI box and the measured gap is transport +
   scheduling, not core count.  The acceptance bar is >=3x chunk
   throughput at 4 workers vs 1 (near-linear minus the per-chunk
   lease/result round-trips).

2. **Elastic membership** — real genotype chunks (padded so a kill can
   land mid-lease) run against a fleet of two store-attached workers;
   one worker is SIGKILLed while it holds a lease and a replacement
   joins mid-run.  The run must finish with every indicator row
   bit-identical to a fault-free serial evaluation, the requeue/lost
   counters showing the recovery actually happened, and the shared
   store holding every computed row — the zero-loss property the fleet
   is for.

Run directly (``python benchmarks/bench_fleet.py``) or via pytest
(``pytest benchmarks/bench_fleet.py``).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import astuple
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict

import numpy as np

from repro.engine import Engine
from repro.engine.cache import IndicatorCache
from repro.eval.benchconfig import bench_scale
from repro.proxies.base import ProxyConfig
from repro.runtime.fleet import FleetPool
from repro.runtime.pool import _evaluate_genotype_chunk
from repro.runtime.store import RuntimeStore, cache_fingerprint
from repro.searchspace.canonical import canonicalize
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import Timer, format_duration

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Scaling workload: enough chunks that 4 workers stay saturated, padded
#: long enough that per-chunk round-trips (a few ms) stay in the noise.
N_CHUNKS = 24
PAD_SECONDS = 0.1
WORKER_COUNTS = (1, 2, 4)

#: Elastic workload (real genotype chunks).
ELASTIC_POPULATION = 12
ELASTIC_CHUNK = 2
ELASTIC_PAD = 0.25


def _proxy_config() -> ProxyConfig:
    """Smallest full-path proxy scale: the bench measures transport and
    recovery, not kernels."""
    return ProxyConfig(init_channels=4, cells_per_stage=1, input_size=8,
                       ntk_batch_size=8, lr_num_samples=32, lr_input_size=4,
                       lr_channels=2, seed=7)


# ----------------------------------------------------------------------
# Part 1: worker scaling
# ----------------------------------------------------------------------
def _padded_echo_chunk(payload):
    """GIL-free fixed-cost chunk: models remote proxy evaluation whose
    cost dwarfs the lease/result round-trip."""
    time.sleep(PAD_SECONDS)
    return ([(payload, {"v": float(payload)})], PAD_SECONDS)


def _wait_for_workers(pool: FleetPool, n: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while pool.broker.num_workers < n:
        if time.monotonic() > deadline:
            raise RuntimeError(f"only {pool.broker.num_workers}/{n} "
                               f"workers registered")
        time.sleep(0.01)


def _run_scaling(n_workers: int) -> Dict:
    with FleetPool(n_workers=n_workers, lease_seconds=60.0) as pool:
        pool.spawn_local_workers(n_workers, poll_seconds=0.01)
        _wait_for_workers(pool, n_workers)
        with Timer() as timer:
            for chunk in range(N_CHUNKS):
                pool.submit(_padded_echo_chunk, chunk, tag=chunk)
            results = pool.gather_all()
        assert len(results) == N_CHUNKS
        assert all(r.error is None for r in results)
        return {
            "n_workers": n_workers,
            "wall_seconds": timer.elapsed,
            "chunks_per_second": N_CHUNKS / timer.elapsed,
        }


# ----------------------------------------------------------------------
# Part 2: elastic membership (SIGKILL mid-lease + mid-run join)
# ----------------------------------------------------------------------
def _padded_genotype_chunk(payload):
    rows, seconds = _evaluate_genotype_chunk(payload)
    time.sleep(ELASTIC_PAD)
    return rows, seconds + ELASTIC_PAD


def _run_elastic(proxy_config: ProxyConfig) -> Dict:
    population = NasBench201Space().sample(ELASTIC_POPULATION, rng=5)
    serial_engine = Engine(proxy_config=proxy_config)
    serial = serial_engine.evaluate_population(population)
    serial_rows = dict(serial_engine.cache.items())

    engine = Engine(proxy_config=proxy_config)
    proxy_key = astuple(engine.proxy_config)
    macro_key = astuple(engine.macro_config)
    chunks = []
    seen = set()
    for genotype in population:
        canon = canonicalize(genotype)
        if canon.to_index() in seen:
            continue
        seen.add(canon.to_index())
        chunks.append((canon.ops, (True, True, True)))
    payloads = [tuple(chunks[i:i + ELASTIC_CHUNK])
                for i in range(0, len(chunks), ELASTIC_CHUNK)]

    with TemporaryDirectory() as tmp:
        store_dir = os.path.join(tmp, "store")
        with FleetPool(n_workers=2, lease_seconds=60.0) as pool:
            victim = pool.spawn_local_workers(
                1, store_dir=store_dir, poll_seconds=0.01)[0]
            _wait_for_workers(pool, 1)
            for payload in payloads:
                pool.submit(_padded_genotype_chunk,
                            (payload, engine.proxy_config,
                             engine.macro_config))

            def freshly_leased() -> bool:
                with pool.broker._lock:
                    return any(t.state == "leased"
                               and t.leased_wall is not None
                               and time.time() - t.leased_wall < 0.12
                               for t in pool.broker._tasks.values())

            deadline = time.monotonic() + 30.0
            while not freshly_leased() and time.monotonic() < deadline:
                time.sleep(0.005)
            os.kill(victim.pid, signal.SIGKILL)
            pool.spawn_local_workers(1, store_dir=store_dir,
                                     poll_seconds=0.01)
            results = pool.gather_all()
            counters = pool.broker.counters()

        merged = IndicatorCache()
        for result in results:
            assert result.error is None, result.error
            for index, row in result.value[0]:
                for name, value in row.items():
                    key = {"ntk": ("ntk", index, 1, proxy_key),
                           "linear_regions": ("linear_regions", index,
                                              proxy_key),
                           "flops": ("flops", index, macro_key)}[name]
                    merged.put(key, value)
        gathered = dict(merged.items())
        bit_identical = gathered == serial_rows

        probe = IndicatorCache()
        store = RuntimeStore(store_dir)
        fingerprint = cache_fingerprint(engine.proxy_config,
                                        engine.macro_config)
        store.load_cache_into(probe, fingerprint)
        persisted = dict(probe.items())
        lost_rows = sum(1 for key, value in serial_rows.items()
                        if persisted.get(key) != value)

    return {
        "population": ELASTIC_POPULATION,
        "unique_chunks": len(payloads),
        "rows_expected": len(serial_rows),
        "rows_recovered": len(gathered),
        "workers_lost": counters["workers_lost"],
        "requeues": counters["requeues"],
        "joined_mid_run": True,
        "bit_identical": bit_identical,
        "store_rows_persisted": len(persisted),
        "lost_rows": lost_rows,
        "serial_reference_unique": serial.unique_canonical,
    }


# ----------------------------------------------------------------------
def run_fleet_bench() -> Dict:
    scaling = {f"workers_{n}": _run_scaling(n) for n in WORKER_COUNTS}
    base = scaling["workers_1"]["chunks_per_second"]
    top = scaling[f"workers_{WORKER_COUNTS[-1]}"]["chunks_per_second"]
    elastic = _run_elastic(_proxy_config())
    result = {
        "bench_scale": bench_scale(),
        "n_chunks": N_CHUNKS,
        "pad_seconds": PAD_SECONDS,
        "scaling": scaling,
        "speedup_4x_vs_1": top / max(base, 1e-9),
        "fleet_bit_identical": elastic["bit_identical"],
        "elastic": elastic,
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_fleet_scaling_and_elastic(benchmark):
    result = benchmark.pedantic(run_fleet_bench, rounds=1, iterations=1)
    _report(result)
    # Near-linear fan-out: the sleep pad dominates the round-trips.
    assert result["speedup_4x_vs_1"] >= 3.0
    # The headline zero-loss property.
    elastic = result["elastic"]
    assert elastic["workers_lost"] >= 1
    assert elastic["bit_identical"]
    assert elastic["lost_rows"] == 0
    assert elastic["rows_recovered"] == elastic["rows_expected"]


def _report(result: Dict) -> None:
    print()
    for n in WORKER_COUNTS:
        row = result["scaling"][f"workers_{n}"]
        print(f"{n} worker(s): {format_duration(row['wall_seconds'])}"
              f"  ({row['chunks_per_second']:.1f} chunks/s)")
    print(f"speedup 4 vs 1     : {result['speedup_4x_vs_1']:.2f}x")
    elastic = result["elastic"]
    print(f"elastic            : lost={elastic['workers_lost']} "
          f"requeues={elastic['requeues']} "
          f"rows {elastic['rows_recovered']}/{elastic['rows_expected']} "
          f"(store {elastic['store_rows_persisted']}, "
          f"lost {elastic['lost_rows']})")
    print(f"bit-identical      : {result['fleet_bit_identical']}")
    print(f"written            : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_fleet_bench())
