"""Extension A12 — energy per inference: the budget batteries actually pay.

The paper optimises latency on "low-power edge MCUs"; a duty-cycled
battery deployment pays energy = power × latency.  This harness runs the
energy estimator (datasheet power × LUT latency + wake cost) over the
board registry for a reference pair of cells and an architecture sample,
and shows the headline consequence: *energy ranks devices differently
than latency* — the 480 MHz H7 wins every latency contest but loses on
energy to the 26 mW L4.

Shapes that must hold: within one board, energy ranks architectures
identically to latency (it is a monotone per-device transform); across
boards the orderings differ (L4 best energy, H7 best latency); battery
life at 0.1 Hz spans orders of magnitude across boards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import kendall_tau
from repro.hardware.device import (
    NUCLEO_F411RE,
    NUCLEO_F746ZG,
    NUCLEO_H743ZI,
    NUCLEO_L432KC,
    RP2040_PICO,
)
from repro.hardware.energy import EnergyEstimator
from repro.hardware.latency import LatencyEstimator
from repro.searchspace import NasBench201Space
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

DEVICES = (NUCLEO_H743ZI, NUCLEO_F746ZG, NUCLEO_F411RE, NUCLEO_L432KC,
           RP2040_PICO)
LIGHT_CELL = Genotype.from_arch_str(
    "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
    "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
)
NUM_ARCHS = 12
DUTY_CYCLE_HZ = 0.1  # one inference every 10 s: sensor-node regime


def run_energy_study():
    config = MacroConfig.full()
    archs = NasBench201Space().sample(NUM_ARCHS, rng=515)
    per_device = {}
    for device in DEVICES:
        estimator = EnergyEstimator(
            device, estimator=LatencyEstimator(device, config=config)
        )
        latencies = np.array(
            [estimator.estimator.estimate_ms(g) for g in archs]
        )
        energies = np.array(
            [estimator.energy_per_inference_mj(g) for g in archs]
        )
        report = estimator.report(LIGHT_CELL, duty_cycle_hz=DUTY_CYCLE_HZ)
        per_device[device.name] = (latencies, energies, report)
    return per_device


def test_energy(benchmark):
    per_device = benchmark.pedantic(run_energy_study, rounds=1, iterations=1)
    rows = []
    for name, (latencies, energies, report) in per_device.items():
        rows.append([
            name,
            f"{report.latency_ms:.0f}",
            f"{report.energy_per_inference_mj:.1f}",
            f"{report.average_power_mw:.2f}",
            f"{report.battery_days:.0f}",
        ])
    print()
    print(format_table(
        rows,
        headers=["device", "latency ms", "mJ/inference", "avg mW @ 0.1 Hz",
                 "battery days"],
        title="A12: energy economics of the light cell (CR123A-class cell)",
    ))

    # Shape 1: within one board, energy preserves the latency ranking.
    for name, (latencies, energies, _) in per_device.items():
        assert kendall_tau(latencies, energies) > 0.99, name

    # Shape 2: across boards the two orderings disagree — fastest is the
    # H7, most frugal is the L4.
    fastest = min(per_device, key=lambda n: per_device[n][2].latency_ms)
    frugalest = min(
        per_device,
        key=lambda n: per_device[n][2].energy_per_inference_mj,
    )
    assert fastest == NUCLEO_H743ZI.name
    assert frugalest == NUCLEO_L432KC.name
    assert fastest != frugalest

    # Shape 3: the sensor-node battery story spans a wide range.
    days = [report.battery_days for _, _, report in per_device.values()]
    assert max(days) / min(days) > 5.0
    assert all(d > 0 for d in days)
