"""Ablation A1 — indicator combinations (design choice behind the hybrid
objective).

Measures the rank correlation between each indicator combination's score
and surrogate accuracy over an architecture sample: NTK-only, LR-only, and
the paper's NTK+LR hybrid.  The hybrid should be at least as predictive as
the weaker single indicator and competitive with the stronger one — the
paper's justification for combining them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.benchconfig import correlation_proxy_config, num_correlation_archs
from repro.benchdata import SurrogateModel
from repro.eval import kendall_tau
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number
from repro.proxies.ranking import combine_ranks
from repro.searchspace import NasBench201Space
from repro.utils import format_table


def run_ablation():
    config = correlation_proxy_config()
    surrogate = SurrogateModel()
    space = NasBench201Space()
    archs = space.sample(num_correlation_archs(), rng=31)

    kappas = np.array([ntk_condition_number(g, config) for g in archs])
    kappas[~np.isfinite(kappas)] = 1e30
    regions = np.array([count_line_regions(g, config) for g in archs])
    accs = np.array([surrogate.mean_accuracy(g, "cifar10") for g in archs])

    directions = {"ntk": False, "lr": True}
    combos = {
        "NTK only": {"ntk": 1.0, "lr": 0.0},
        "LR only": {"ntk": 0.0, "lr": 1.0},
        "NTK + LR (hybrid)": {"ntk": 1.0, "lr": 1.0},
    }
    taus = {}
    for name, weights in combos.items():
        score = combine_ranks({"ntk": kappas, "lr": regions}, directions, weights)
        taus[name] = kendall_tau(-score, accs)  # lower score = better arch
    return taus


def test_ablation_objective_combination(benchmark):
    taus = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        [[name, f"{tau:+.3f}"] for name, tau in taus.items()],
        headers=["objective", "Kendall-tau vs accuracy"],
        title="Ablation A1: indicator combinations",
    ))
    singles = [taus["NTK only"], taus["LR only"]]
    hybrid = taus["NTK + LR (hybrid)"]
    # Shape: each indicator alone carries signal; the hybrid is balanced —
    # it clearly beats the weaker indicator (robustness across datasets is
    # the paper's reason for combining) and stays near the stronger one.
    assert min(singles) > 0.0
    assert hybrid >= (singles[0] + singles[1]) / 2.0 - 0.05
    assert hybrid >= max(singles) - 0.15
