"""Fig. 2a — Kendall-τ of condition numbers K_i vs accuracy.

The paper plots Kendall-τ between NTK condition-number variants
``K_i = λ_max / λ_(i-th smallest)`` (i = 1..16) and final accuracy on
CIFAR-10 / CIFAR-100 / ImageNet16-120.  Shape: the strongest correlation
sits at small i (the classic condition number K_1 region) and degrades as
i moves toward the bulk of the spectrum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.benchconfig import correlation_proxy_config, num_correlation_archs
from repro.benchdata import SurrogateModel
from repro.eval import kendall_tau
from repro.proxies.ntk import ntk_spectrum
from repro.searchspace import NasBench201Space
from repro.utils import format_table

DATASETS = ("cifar10", "cifar100", "imagenet16-120")
MAX_K_INDEX = 16


def run_fig2a():
    config = correlation_proxy_config()
    surrogate = SurrogateModel()
    space = NasBench201Space()
    archs = space.sample(num_correlation_archs(), rng=2024)

    spectra = [ntk_spectrum(g, config) for g in archs]
    max_index = min(MAX_K_INDEX, config.ntk_batch_size)

    taus = {}
    for dataset in DATASETS:
        accs = [surrogate.mean_accuracy(g, dataset) for g in archs]
        series = []
        for i in range(1, max_index + 1):
            ks = np.array([s.k(i) for s in spectra])
            ks[~np.isfinite(ks)] = 1e30
            series.append(kendall_tau(-ks, accs))
        taus[dataset] = series
    return taus


def test_fig2a_condition_number(benchmark):
    taus = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)
    max_index = len(next(iter(taus.values())))
    print()
    print(format_table(
        [[f"K_{i+1}"] + [f"{taus[d][i]:+.3f}" for d in DATASETS]
         for i in range(max_index)],
        headers=["K_i"] + list(DATASETS),
        title="Fig. 2a: Kendall-tau of K_i vs accuracy",
    ))
    for dataset in DATASETS:
        series = taus[dataset]
        # Shape 1: the classic condition-number region correlates positively.
        assert max(series[:4]) > 0.25, f"{dataset}: no usable NTK signal"
        # Shape 2: small-i indices beat the bulk-spectrum indices.
        assert max(series[:4]) >= max(series[-4:]) - 0.05, (
            f"{dataset}: K_i should degrade toward the spectrum bulk"
        )
