"""Shared benchmark fixtures.

Scale knobs live in :mod:`repro.eval.benchconfig`; set
``REPRO_BENCH_SCALE=paper`` for the paper's exact proxy operating point.

Benchmarks are not collected by the tier-1 run (``bench_*.py`` naming).
When iterating on store/persistence code, the fast lane is the unit
tests carrying the ``store`` marker — ``PYTHONPATH=src python -m pytest
-q -m store`` (seconds) — before paying for a full
``pytest benchmarks/bench_store_scale.py`` pass, which builds stores up
to 1M+ rows to pin the warm-start scaling claims.
"""

from __future__ import annotations

import pytest

from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.network import MacroConfig


@pytest.fixture(scope="session")
def deploy_config() -> MacroConfig:
    """Deployment macro config (paper's full NAS-Bench-201 skeleton)."""
    return MacroConfig.full()


@pytest.fixture(scope="session")
def latency_estimator(deploy_config) -> LatencyEstimator:
    """One profiled STM32F746ZG latency estimator for the whole session."""
    return LatencyEstimator(NUCLEO_F746ZG, config=deploy_config)
