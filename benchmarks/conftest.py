"""Shared benchmark fixtures.

Scale knobs live in :mod:`repro.eval.benchconfig`; set
``REPRO_BENCH_SCALE=paper`` for the paper's exact proxy operating point.
"""

from __future__ import annotations

import pytest

from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.network import MacroConfig


@pytest.fixture(scope="session")
def deploy_config() -> MacroConfig:
    """Deployment macro config (paper's full NAS-Bench-201 skeleton)."""
    return MacroConfig.full()


@pytest.fixture(scope="session")
def latency_estimator(deploy_config) -> LatencyEstimator:
    """One profiled STM32F746ZG latency estimator for the whole session."""
    return LatencyEstimator(NUCLEO_F746ZG, config=deploy_config)
