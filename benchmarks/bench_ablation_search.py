"""Ablation A2 — pruning-based search vs random zero-shot search.

Both methods consume the same proxy budget class (tens of evaluations);
the pruning algorithm's structured exploration should find architectures
at least as good as sample-and-rank across seeds — the paper's argument
for contribution #3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.benchconfig import search_proxy_config
from repro.benchdata import SurrogateModel
from repro.search import (
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
    ZeroShotRandomSearch,
)
from repro.utils import format_table

SEEDS = (0, 1, 2)
#: Random search gets the same candidate budget the pruning search uses
#: (30 + 24 + 18 + 12 supernet evaluations).
RANDOM_BUDGET = 84


def run_ablation(latency_estimator):
    surrogate = SurrogateModel()
    proxy_config = search_proxy_config()
    rows = []
    for seed in SEEDS:
        pruning_obj = HybridObjective(
            proxy_config=proxy_config.with_seed(seed),
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=latency_estimator,
        )
        pruning = MicroNASSearch(pruning_obj, seed=seed).search()
        random_obj = HybridObjective(
            proxy_config=proxy_config.with_seed(seed),
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=latency_estimator,
        )
        random_result = ZeroShotRandomSearch(
            random_obj, num_samples=RANDOM_BUDGET, seed=seed
        ).search()
        rows.append({
            "seed": seed,
            "pruning_acc": surrogate.mean_accuracy(pruning.genotype, "cifar10"),
            "pruning_lat": latency_estimator.estimate_ms(pruning.genotype),
            "random_acc": surrogate.mean_accuracy(random_result.genotype, "cifar10"),
            "random_lat": latency_estimator.estimate_ms(random_result.genotype),
        })
    return rows


def test_ablation_search_strategy(benchmark, latency_estimator):
    rows = benchmark.pedantic(
        lambda: run_ablation(latency_estimator), rounds=1, iterations=1
    )
    print()
    print(format_table(
        [[r["seed"], f"{r['pruning_acc']:.2f}", f"{r['pruning_lat']:.0f}",
          f"{r['random_acc']:.2f}", f"{r['random_lat']:.0f}"] for r in rows],
        headers=["seed", "pruning acc", "pruning ms", "random acc", "random ms"],
        title="Ablation A2: pruning vs random zero-shot (equal budget)",
    ))
    pruning_scores = np.array(
        [r["pruning_acc"] - 0.01 * r["pruning_lat"] for r in rows]
    )
    random_scores = np.array(
        [r["random_acc"] - 0.01 * r["random_lat"] for r in rows]
    )
    # Shape: on the accuracy-latency objective both optimise, structured
    # pruning matches or beats unstructured sampling on average.
    assert pruning_scores.mean() >= random_scores.mean() - 1.0
