"""Telemetry runtime: armed overhead and trace completeness.

Two measurements, both writing ``BENCH_telemetry.json``:

1. **Armed overhead** — the same sleep-padded population warm is pushed
   through :class:`~repro.runtime.async_pool.AsyncPopulationExecutor`
   twice: once with telemetry disabled (the default) and once armed with
   a trace file — spans recording, metrics counting, fork-worker sidecar
   appends, and the end-of-run Chrome-trace export all included in the
   armed wall-clock.  Telemetry is a strict observer, so the gap must
   stay under 2% **and** the indicator rows computed by both arms must
   be bit-identical.

2. **Trace completeness under faults** — a fuzzed-fault fork run (the
   fault bench's 20% crash/hang/poison mix) with tracing armed must
   produce a loadable Chrome ``trace_event`` JSON whose spans cover at
   least 95% of the wall-clock between the first dispatch and the last
   span — the timeline an operator would actually debug from, faults,
   backoff waits and respawns included.

Run directly (``python benchmarks/bench_telemetry.py``) or via pytest
(``pytest benchmarks/bench_telemetry.py``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.engine import Engine
from repro.eval.benchconfig import bench_scale, search_proxy_config
from repro.runtime.async_pool import AsyncPopulationExecutor
from repro.runtime.faults import FaultPlan, FaultPolicy, QuarantineLedger
from repro.runtime.pool import _evaluate_genotype_chunk
from repro.runtime.telemetry import (
    Telemetry,
    load_trace,
    span_coverage,
    summarize_trace,
)
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import Timer, format_duration

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

# Overhead part: enough chunks that per-span/per-sidecar-append cost
# would show up if it were expensive, padded so the workload duration is
# stable against scheduler noise (the pad dominates proxy compute).
OVERHEAD_CANDIDATES = 64
OVERHEAD_PAD_S = 0.004
OVERHEAD_REPEATS = 7
OVERHEAD_BUDGET = 0.02  # the acceptance bar: < 2% armed overhead

# Traced-faults part: the fault bench's operating point.
TRACE_CANDIDATES = 24
FAULT_RATE = 0.2
N_WORKERS = 4
CHUNK_TIMEOUT_S = 2.0
HANG_S = 4.0
COVERAGE_BAR = 0.95


def _padded_worker(payload):
    """Real chunk evaluation plus a fixed per-candidate pad."""
    rows, seconds = _evaluate_genotype_chunk(payload)
    pad = OVERHEAD_PAD_S * len(rows)
    time.sleep(pad)
    return rows, seconds + pad


# ----------------------------------------------------------------------
# Part 1: armed-vs-disabled overhead (and bit-identity)
# ----------------------------------------------------------------------
def _warm_once(proxy_config, population,
               telemetry: Optional[Telemetry]):
    engine = Engine(proxy_config=proxy_config)
    with AsyncPopulationExecutor(n_workers=1, chunk_size=1, mode="serial",
                                 genotype_worker=_padded_worker,
                                 telemetry=telemetry) as executor:
        with Timer() as timer:
            executor.warm_population(engine, population,
                                     assume_canonical=False)
            if telemetry is not None and telemetry.enabled:
                # The one-shot export is part of what arming costs.
                telemetry.write_trace()
    return timer.elapsed, engine


def _run_overhead(proxy_config, tmp_dir: Path) -> Dict:
    population = NasBench201Space().sample(OVERHEAD_CANDIDATES, rng=5)
    disabled_times, armed_times = [], []
    engines = {}
    run_counter = [0]

    def disabled_arm():
        elapsed, engine = _warm_once(proxy_config, population, None)
        engines.setdefault("disabled", engine)
        return elapsed

    def armed_arm():
        run_counter[0] += 1
        trace = tmp_dir / f"overhead-{run_counter[0]}.json"
        telemetry = Telemetry.armed(run_id=f"arm{run_counter[0]}",
                                    trace_path=trace)
        elapsed, engine = _warm_once(proxy_config, population, telemetry)
        engines.setdefault("armed", engine)
        return elapsed

    # Alternate which arm goes first each round so machine drift within
    # a round hits both arms equally; compare minima (the
    # least-disturbed observation of each arm).
    for repeat in range(OVERHEAD_REPEATS):
        arms = [(disabled_times, disabled_arm), (armed_times, armed_arm)]
        for times, arm in (arms if repeat % 2 == 0 else reversed(arms)):
            times.append(arm())

    # Strict observer: both arms computed the exact same rows.
    baseline = engines["disabled"].evaluate_population(population)
    traced = engines["armed"].evaluate_population(population)
    assert baseline.cache_misses == 0 and traced.cache_misses == 0
    bit_identical = all(
        np.array_equal(baseline.columns[name], traced.columns[name])
        for name in baseline.columns
    )

    best_disabled, best_armed = min(disabled_times), min(armed_times)
    return {
        "candidates": OVERHEAD_CANDIDATES,
        "pad_seconds_per_candidate": OVERHEAD_PAD_S,
        "repeats": OVERHEAD_REPEATS,
        "disabled_wall_seconds": best_disabled,
        "armed_wall_seconds": best_armed,
        "overhead_fraction": (best_armed - best_disabled)
                             / max(best_disabled, 1e-9),
        "budget_fraction": OVERHEAD_BUDGET,
        "rows_bit_identical": bit_identical,
    }


# ----------------------------------------------------------------------
# Part 2: trace completeness under a 20% fault rate
# ----------------------------------------------------------------------
def _run_traced(proxy_config, tmp_dir: Path) -> Dict:
    population = NasBench201Space().sample(TRACE_CANDIDATES, rng=13)
    trace_path = tmp_dir / "faulted-trace.json"
    telemetry = Telemetry.armed(run_id="benchfault", trace_path=trace_path)
    plan = FaultPlan(state_path=str(tmp_dir / "fault-state"),
                     hash_rate=FAULT_RATE,
                     hash_actions=("crash", "hang", "poison"),
                     hang_seconds=HANG_S)
    policy = FaultPolicy(chunk_timeout=CHUNK_TIMEOUT_S, max_retries=2,
                         max_respawns=8, backoff_base=0.01)
    ledger = QuarantineLedger(tmp_dir / "quarantine.jsonl")

    engine = Engine(proxy_config=proxy_config)
    with AsyncPopulationExecutor(n_workers=N_WORKERS, chunk_size=1,
                                 mode="fork",
                                 genotype_worker=plan.wrap(
                                     _evaluate_genotype_chunk),
                                 fault_policy=policy,
                                 quarantine_ledger=ledger,
                                 telemetry=telemetry) as executor:
        with Timer() as timer:
            executor.submit_population(engine, population)
            merged = sum(chunk.merged_rows
                         for chunk in executor.gather_all())
        stats = executor.stats

    telemetry.write_trace(other_data={"bench": "telemetry"})
    payload = load_trace(trace_path)
    summary = summarize_trace(payload)
    span_names = {event["name"] for event in payload["traceEvents"]
                  if event.get("ph") == "X"}
    worker_spans = sum(1 for event in payload["traceEvents"]
                       if event.get("ph") == "X"
                       and event.get("cat") == "worker")
    return {
        "candidates": TRACE_CANDIDATES,
        "fault_rate": FAULT_RATE,
        "n_workers": N_WORKERS,
        "chunk_timeout_seconds": CHUNK_TIMEOUT_S,
        "wall_seconds": timer.elapsed,
        "merged_rows": merged,
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "respawns": stats.respawns,
        "quarantined": stats.quarantined,
        "n_spans": summary["n_spans"],
        "worker_spans": worker_spans,
        "span_names": sorted(span_names),
        "coverage": summary["coverage"],
        "coverage_bar": COVERAGE_BAR,
        "phase_seconds": {phase["name"]: phase["seconds"]
                          for phase in summary["phases"]},
        "trace_bytes": trace_path.stat().st_size,
    }


def run_telemetry() -> Dict:
    proxy_config = search_proxy_config()
    with tempfile.TemporaryDirectory() as tmp:
        overhead = _run_overhead(proxy_config, Path(tmp))
        traced = _run_traced(proxy_config, Path(tmp))
    result = {
        "bench_scale": bench_scale(),
        "overhead": overhead,
        "traced": traced,
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_telemetry(benchmark):
    result = benchmark.pedantic(run_telemetry, rounds=1, iterations=1)
    _report(result)
    overhead, traced = result["overhead"], result["traced"]
    # Acceptance: armed tracing costs < 2% wall-clock and changes no row.
    assert overhead["overhead_fraction"] < OVERHEAD_BUDGET
    assert overhead["rows_bit_identical"]
    # Acceptance: the fuzzed-fault trace is complete — spans cover >= 95%
    # of the window from first dispatch to last span — and every layer
    # shows up, workers (cross-process sidecar) included.
    assert traced["coverage"] >= COVERAGE_BAR
    assert traced["worker_spans"] >= 1
    assert set(traced["span_names"]) >= {"dispatch", "gather", "merge",
                                         "worker_compute"}


def _report(result: Dict) -> None:
    overhead, traced = result["overhead"], result["traced"]
    print()
    print(f"disabled warm     : "
          f"{format_duration(overhead['disabled_wall_seconds'])}")
    print(f"armed warm        : "
          f"{format_duration(overhead['armed_wall_seconds'])}"
          f"  -> {overhead['overhead_fraction']:+.2%} overhead"
          f" (budget {overhead['budget_fraction']:.0%})")
    print(f"rows identical    : {overhead['rows_bit_identical']}")
    print(f"faulted traced run: "
          f"{format_duration(traced['wall_seconds'])}"
          f"  ({traced['merged_rows']} rows, {traced['retries']} retries, "
          f"{traced['timeouts']} timeouts, {traced['respawns']} respawns)")
    print(f"trace             : {traced['n_spans']} spans "
          f"({traced['worker_spans']} from workers), "
          f"coverage {traced['coverage']:.1%} "
          f"(bar {traced['coverage_bar']:.0%}), "
          f"{traced['trace_bytes'] / 1024:.1f} KB")
    print(f"written           : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_telemetry())
