"""Ablation A4 — the paper's indicators vs the wider zero-cost proxy suite.

MicroNAS chose NTK-condition-number + linear-regions.  This harness ranks
the full registry (grad_norm, SNIP, Fisher, SynFlow, Jacobian covariance,
NASWOT, and the paper's two) by Kendall-τ against surrogate accuracy on
one architecture sample — the evidence a practitioner would want before
accepting the paper's indicator choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.benchconfig import correlation_proxy_config, num_correlation_archs
from repro.benchdata import SurrogateModel
from repro.eval import kendall_tau
from repro.proxies.zerocost import PROXY_REGISTRY
from repro.searchspace import NasBench201Space
from repro.utils import format_table


def run_proxy_sweep():
    config = correlation_proxy_config()
    surrogate = SurrogateModel()
    archs = NasBench201Space().sample(num_correlation_archs(), rng=404)
    accs = [surrogate.mean_accuracy(g, "cifar10") for g in archs]

    taus = {}
    for name, spec in PROXY_REGISTRY.items():
        values = np.array([spec.fn(g, config) for g in archs], dtype=float)
        values[~np.isfinite(values)] = (
            1e30 if not spec.higher_is_better else -1e30
        )
        signed = values if spec.higher_is_better else -values
        taus[name] = kendall_tau(signed, accs)
    return taus


def test_ablation_proxy_suite(benchmark):
    taus = benchmark.pedantic(run_proxy_sweep, rounds=1, iterations=1)
    ordered = sorted(taus.items(), key=lambda kv: kv[1], reverse=True)
    print()
    print(format_table(
        [[name, f"{tau:+.3f}"] for name, tau in ordered],
        headers=["proxy", "Kendall-tau vs accuracy"],
        title="Ablation A4: zero-cost proxy suite",
    ))
    # Shape 1: the paper's indicators both carry real signal.
    assert taus["ntk"] > 0.15
    assert taus["linear_regions"] > 0.3
    # Shape 2: the paper's picks are competitive — linear regions in the
    # suite's top three and NTK in the top half (SynFlow typically tops
    # NB201-like spaces in the literature; the paper's pair is chosen for
    # complementarity, not single-proxy supremacy).
    ranking = [name for name, _ in ordered]
    assert ranking.index("linear_regions") < 3
    assert ranking.index("ntk") < len(ranking) / 2
