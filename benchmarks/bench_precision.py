"""Float32 vs float64 proxy-substrate throughput and rank agreement.

The precision-policy refactor threads an explicit dtype through the
autograd tape, the nn layers and the engine kernels.  This benchmark
measures what the policy buys and what it costs:

* **Kernel throughput** — ``batched_ntk_jacobian`` (the hot kernel of
  trainless evaluation: one batched forward + backward + per-sample
  reconstruction) timed at a compute-bound operating point under both
  policies.  The acceptance bar is ≥ 1.5× float32 speedup.
* **End-to-end proxy throughput** — full ``ntk_condition_number`` +
  ``count_line_regions`` evaluations over a sampled population (includes
  Python/tape overhead, so the speedup is smaller than kernel-level).
* **Rank agreement** — Spearman/Kendall correlation of the float32 vs
  float64 indicator rankings over the population (the proxies are rank
  statistics; the acceptance bar is Spearman ≥ 0.99).

Results land in ``BENCH_precision.json`` at the repo root.  Run directly
(``python benchmarks/bench_precision.py``) or via pytest
(``pytest benchmarks/bench_precision.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.autograd.precision import precision
from repro.engine.kernels import batched_ntk_jacobian
from repro.eval.benchconfig import bench_scale
from repro.eval.correlation import kendall_tau, spearman_rho
from repro.proxies.base import ProxyConfig
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import build_network
from repro.searchspace.space import NasBench201Space
from repro.utils.rng import new_rng
from repro.utils.timing import format_duration

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_precision.json"

#: Compute-bound kernel operating point: wide enough that BLAS dominates
#: the Python/tape overhead the policy cannot touch.
KERNEL_CONFIG = dict(init_channels=16, ntk_batch_size=32, input_size=16)
KERNEL_ARCH = 1462
KERNEL_REPS = 3

#: Population for the end-to-end throughput + rank-agreement sweep.
POPULATION_SIZE = 24


def _rank_vector(values) -> np.ndarray:
    """Map inf (untrainable κ) to a shared ceiling so ranks stay defined."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    ceiling = (finite.max() * 10.0 + 1.0) if finite.size else 1.0
    return np.where(np.isfinite(values), values, ceiling)


def _time_kernel(precision_name: str) -> float:
    """Mean seconds per batched NTK Jacobian at the kernel operating point."""
    config = ProxyConfig(precision=precision_name, **KERNEL_CONFIG)
    genotype = Genotype.from_index(KERNEL_ARCH)
    with precision(precision_name):
        network = build_network(genotype, config.macro_config(), rng=new_rng(0))
        images = new_rng(1).normal(
            size=(config.ntk_batch_size, 3, config.input_size,
                  config.input_size))
        batched_ntk_jacobian(network, images)  # warm-up (allocator, BLAS)
        start = time.perf_counter()
        for _ in range(KERNEL_REPS):
            batched_ntk_jacobian(network, images)
        return (time.perf_counter() - start) / KERNEL_REPS


def _time_population(config: ProxyConfig, population) -> Dict:
    start = time.perf_counter()
    ntk = [ntk_condition_number(genotype, config) for genotype in population]
    regions = [count_line_regions(genotype, config) for genotype in population]
    return {"seconds": time.perf_counter() - start,
            "ntk": ntk, "linear_regions": regions}


def run_precision_bench() -> Dict:
    kernel64 = _time_kernel("float64")
    kernel32 = _time_kernel("float32")

    base = ProxyConfig(seed=0)  # paper-scale proxies, default precision
    population = NasBench201Space().sample(POPULATION_SIZE, rng=7)
    sweep64 = _time_population(base, population)
    sweep32 = _time_population(base.with_precision("float32"), population)

    ntk64, ntk32 = _rank_vector(sweep64["ntk"]), _rank_vector(sweep32["ntk"])
    result = {
        "bench_scale": bench_scale(),
        "kernel": {
            "operating_point": dict(KERNEL_CONFIG, arch=KERNEL_ARCH,
                                    reps=KERNEL_REPS),
            "float64_seconds": kernel64,
            "float32_seconds": kernel32,
            "speedup": kernel64 / kernel32,
        },
        "population": {
            "size": POPULATION_SIZE,
            "proxy_scale": "paper-default",
            "float64_seconds": sweep64["seconds"],
            "float32_seconds": sweep32["seconds"],
            "speedup": sweep64["seconds"] / sweep32["seconds"],
        },
        "rank_agreement": {
            "ntk_spearman": float(spearman_rho(ntk64, ntk32)),
            "ntk_kendall": float(kendall_tau(ntk64, ntk32)),
            "lr_spearman": float(spearman_rho(sweep64["linear_regions"],
                                              sweep32["linear_regions"])),
            "lr_kendall": float(kendall_tau(sweep64["linear_regions"],
                                            sweep32["linear_regions"])),
            "ntk_nonfinite_agree": bool(np.array_equal(
                np.isfinite(sweep64["ntk"]), np.isfinite(sweep32["ntk"]))),
        },
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_precision_speedup(benchmark):
    result = benchmark.pedantic(run_precision_bench, rounds=1, iterations=1)
    _report(result)
    assert result["kernel"]["speedup"] >= 1.5
    assert result["rank_agreement"]["ntk_spearman"] >= 0.99
    assert result["rank_agreement"]["lr_spearman"] >= 0.99
    assert result["rank_agreement"]["ntk_nonfinite_agree"]


def _report(result: Dict) -> None:
    kernel, pop, rank = (result["kernel"], result["population"],
                         result["rank_agreement"])
    print()
    print(f"kernel (batched NTK Jacobian @ {KERNEL_CONFIG}):")
    print(f"  float64 : {format_duration(kernel['float64_seconds'])}")
    print(f"  float32 : {format_duration(kernel['float32_seconds'])}"
          f"  -> {kernel['speedup']:.2f}x")
    print(f"population ({pop['size']} archs, paper-scale proxies):")
    print(f"  float64 : {format_duration(pop['float64_seconds'])}")
    print(f"  float32 : {format_duration(pop['float32_seconds'])}"
          f"  -> {pop['speedup']:.2f}x")
    print(f"rank agreement: NTK Spearman {rank['ntk_spearman']:.4f} "
          f"(Kendall {rank['ntk_kendall']:.4f}), "
          f"LR Spearman {rank['lr_spearman']:.4f}")
    print(f"written : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_precision_bench())
