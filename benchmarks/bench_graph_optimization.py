"""Ablation A10 — what deployment-graph rewrites are worth on-device.

The latency estimator (and Table I) assume an *optimising* runtime: BN
folded, ``none`` edges skipped.  This harness quantifies the next tier of
rewrites — dead-code elimination, copy elision, conv-accumulator fusion —
by running the cycle model over naive vs optimised kernel sequences for
an architecture sample plus two stress cases (a skip-heavy cell, where
copies/adds dominate, and a dead-branch cell, where DCE removes real conv
work).

Shapes that must hold: the rewrites never hurt; copy/add-bound cells gain
the most among connected cells; DCE turns dead-conv cells into large wins;
conv-dense cells gain the least (MACs dominate and are untouched).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.graphopt import optimization_stats, optimized_network_layers
from repro.hardware.layers import network_layers
from repro.searchspace import NasBench201Space
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

NUM_ARCHS = 16

SKIP_HEAVY = Genotype(("skip_connect",) * 6)
DEAD_BRANCH = Genotype(("nor_conv_3x3", "none", "nor_conv_3x3",
                        "skip_connect", "none", "none"))
CONV_DENSE = Genotype(("nor_conv_3x3", "nor_conv_3x3", "nor_conv_3x3",
                       "nor_conv_3x3", "nor_conv_3x3", "nor_conv_3x3"))


def run_graph_optimization():
    config = MacroConfig.full()
    model = CycleCostModel(NUCLEO_F746ZG)
    named = [("skip-heavy", SKIP_HEAVY), ("dead-branch", DEAD_BRANCH),
             ("conv-dense", CONV_DENSE)]
    sampled = NasBench201Space().sample(NUM_ARCHS, rng=611)
    rows = {}
    for label, genotype in named + [(f"sample-{i}", g)
                                    for i, g in enumerate(sampled)]:
        naive = model.network_cycles(network_layers(genotype, config))
        optimized = model.network_cycles(
            optimized_network_layers(genotype, config))
        stats = optimization_stats(genotype, config)
        rows[label] = (genotype, naive, optimized, stats)
    return rows


def test_graph_optimization(benchmark):
    rows = benchmark.pedantic(run_graph_optimization, rounds=1, iterations=1)
    device = NUCLEO_F746ZG
    table = []
    savings = {}
    for label, (genotype, naive, optimized, stats) in rows.items():
        saving = 1.0 - optimized / naive
        savings[label] = saving
        if label.startswith("sample-") and int(label.split("-")[1]) >= 5:
            continue
        table.append([
            label,
            f"{device.cycles_to_ms(naive):.1f}",
            f"{device.cycles_to_ms(optimized):.1f}",
            f"{saving * 100:.1f} %",
            stats.describe(),
        ])
    print()
    print(format_table(
        table,
        headers=["cell", "naive ms", "optimised ms", "saved", "rewrites"],
        title="A10: graph rewrites on nucleo-f746zg (named + 5 samples)",
    ))
    live_savings = [
        s for label, s in savings.items()
        if label.startswith("sample-")
        and rows[label][3].dead_ops_removed == 0
    ]
    dce_savings = [
        s for label, s in savings.items()
        if label.startswith("sample-")
        and rows[label][3].dead_ops_removed > 0
    ]
    print(f"sampled cells: {len(live_savings)} fully live "
          f"(mean saving {np.mean(live_savings) * 100:.1f} %), "
          f"{len(dce_savings)} with dead branches "
          f"(mean saving {np.mean(dce_savings) * 100:.1f} %)"
          if dce_savings else "")

    # Shape 1: never a regression, anywhere.
    assert all(s >= 0.0 for s in savings.values())
    # Shape 2: DCE is the big hammer — cells with dead conv branches (a
    # sizeable fraction of NB201) drop whole convolutions.
    assert savings["dead-branch"] > 0.2
    assert savings["dead-branch"] > savings["skip-heavy"]
    if dce_savings:
        assert np.mean(dce_savings) > np.mean(live_savings)
    # Shape 3: among fully-connected cells, copy/add-bound cells gain more
    # than conv-dense cells (whose MACs the rewrites cannot touch).
    assert savings["skip-heavy"] > savings["conv-dense"]
    # Shape 4: on fully-live cells the rewrites are a small, real win.
    assert live_savings
    assert 0.0 < np.mean(live_savings) < 0.10
