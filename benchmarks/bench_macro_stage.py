"""Extension A5 — the secondary (macro) stage of the MicroNAS workflow.

The paper's latency estimator collects "the number of cells and
input/output channels for each cell" (§II-B-2); this harness searches that
secondary stage.  For the TE-NAS-like cell and the hardware-friendly cell
it prints, per device, the largest skeleton (C, N) that fits the board's
SRAM/flash at int8 plus a latency budget — the MCUNet-style
largest-model-that-fits table — and the latency/capacity Pareto frontier
on the paper's F746ZG board.

Shapes that must hold:
* a tighter latency budget never selects a higher-capacity skeleton,
* the weaker F411RE board never fits a larger skeleton than the F746ZG,
* every frontier point is undominated in (latency, capacity).
"""

from __future__ import annotations

import pytest

from repro.hardware.device import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.search.macro import MacroSearchSpace, MacroStageSearch, device_constraints
from repro.searchspace.genotype import Genotype
from repro.utils import format_table

TENAS_LIKE_CELL = (
    "|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|"
    "+|skip_connect~0|nor_conv_3x3~1|nor_conv_3x3~2|"
)
LIGHT_CELL = (
    "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
    "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
)

SPACE = MacroSearchSpace(channel_choices=(4, 8, 12, 16, 24),
                         cell_choices=(1, 2, 3, 5))
LATENCY_BUDGETS_MS = (None, 300.0, 90.0)
ELEMENT_BYTES = 1  # int8 deployment


def run_macro_stage():
    rows = []
    plans = {}
    for cell_name, arch in (("tenas-like", TENAS_LIKE_CELL),
                            ("light", LIGHT_CELL)):
        genotype = Genotype.from_arch_str(arch)
        for device in (NUCLEO_F746ZG, NUCLEO_F411RE):
            search = MacroStageSearch(
                genotype, device=device, space=SPACE,
                element_bytes=ELEMENT_BYTES,
            )
            for budget in LATENCY_BUDGETS_MS:
                constraints = device_constraints(device, max_latency_ms=budget)
                plan = search.select(constraints)
                cand = plan.candidate
                rows.append([
                    cell_name,
                    device.name,
                    "-" if budget is None else f"{budget:.0f}",
                    f"C={cand.config.init_channels} N={cand.config.cells_per_stage}",
                    f"{cand.latency_ms:.1f}",
                    f"{cand.params / 1e3:.0f}k",
                    f"{cand.peak_sram_bytes / 1024:.0f}",
                    f"{cand.flash_bytes / 1024:.0f}",
                ])
                plans[(cell_name, device.name, budget)] = plan
    frontier = MacroStageSearch(
        Genotype.from_arch_str(TENAS_LIKE_CELL),
        device=NUCLEO_F746ZG, space=SPACE, element_bytes=ELEMENT_BYTES,
    ).pareto_frontier()
    return rows, plans, frontier


def test_macro_stage(benchmark):
    rows, plans, frontier = benchmark.pedantic(run_macro_stage, rounds=1,
                                               iterations=1)
    print()
    print(format_table(
        rows,
        headers=["cell", "device", "budget ms", "skeleton", "lat ms",
                 "params", "SRAM KB", "flash KB"],
        title="A5: secondary-stage search (largest skeleton that fits, int8)",
    ))
    print(format_table(
        [[f"C={c.config.init_channels} N={c.config.cells_per_stage}",
          f"{c.latency_ms:.1f}", f"{c.capacity:.1f}"] for c in frontier],
        headers=["skeleton", "latency ms", "capacity"],
        title="A5: latency/capacity Pareto frontier (tenas-like cell, F746ZG)",
    ))

    # Shape 1: tighter latency budgets never increase capacity.
    for cell_name in ("tenas-like", "light"):
        for device in (NUCLEO_F746ZG, NUCLEO_F411RE):
            caps = [
                plans[(cell_name, device.name, b)].candidate.capacity
                for b in LATENCY_BUDGETS_MS
            ]
            assert caps == sorted(caps, reverse=True)

    # Shape 2: the weaker board never fits a larger skeleton.
    for cell_name in ("tenas-like", "light"):
        for budget in LATENCY_BUDGETS_MS:
            big = plans[(cell_name, NUCLEO_F746ZG.name, budget)]
            small = plans[(cell_name, NUCLEO_F411RE.name, budget)]
            assert small.candidate.capacity <= big.candidate.capacity

    # Shape 3: all selected plans respect the board memories.
    for (cell_name, device_name, budget), plan in plans.items():
        device = NUCLEO_F746ZG if device_name == NUCLEO_F746ZG.name else NUCLEO_F411RE
        assert plan.candidate.peak_sram_bytes <= device.sram_bytes
        assert plan.candidate.flash_bytes <= device.flash_bytes
        if budget is not None:
            assert plan.candidate.latency_ms <= budget

    # Shape 4: the frontier is monotone (latency up, capacity up).
    latencies = [c.latency_ms for c in frontier]
    capacities = [c.capacity for c in frontier]
    assert latencies == sorted(latencies)
    assert capacities == sorted(capacities)
