"""Extension A7 — latency-model portability across edge devices.

Paper §IV: the latency estimation model "has potential applicability to
other edge devices".  This harness tests that claim across the five
built-in boards, from a 480 MHz Cortex-M7 down to a soft-float
Cortex-M0+:

* the LUT estimator is re-profiled per board and validated against that
  board's ground truth (relative error stays small everywhere),
* absolute latencies scale with board capability (H7 < F7 < F4 on every
  architecture),
* latency *rankings* transfer well between sibling cores but degrade
  toward the M0+ — the MCU-specific bias that makes per-device profiling
  (and hence the paper's latency-guided search) worth the trouble.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import kendall_tau
from repro.hardware.device import (
    NUCLEO_F411RE,
    NUCLEO_F746ZG,
    NUCLEO_H743ZI,
    NUCLEO_L432KC,
    RP2040_PICO,
)
from repro.hardware.latency import LatencyEstimator
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

DEVICES = (NUCLEO_H743ZI, NUCLEO_F746ZG, NUCLEO_F411RE, NUCLEO_L432KC,
           RP2040_PICO)
NUM_ARCHS = 20
NUM_VALIDATION_ARCHS = 8


def run_cross_device():
    config = MacroConfig.full()
    archs = NasBench201Space().sample(NUM_ARCHS, rng=713)
    latencies = {}
    errors = {}
    for device in DEVICES:
        estimator = LatencyEstimator(device=device, config=config)
        latencies[device.name] = np.array(
            [estimator.estimate_ms(g) for g in archs]
        )
        errors[device.name] = [
            estimator.relative_error(g) for g in archs[:NUM_VALIDATION_ARCHS]
        ]
    return archs, latencies, errors


def test_cross_device_portability(benchmark):
    archs, latencies, errors = benchmark.pedantic(run_cross_device, rounds=1,
                                                  iterations=1)
    names = [d.name for d in DEVICES]

    print()
    print(format_table(
        [[name,
          f"{latencies[name].mean():.0f}",
          f"{latencies[name].min():.0f}",
          f"{latencies[name].max():.0f}",
          f"{100 * np.mean(errors[name]):.1f} %",
          f"{100 * np.max(errors[name]):.1f} %"]
         for name in names],
        headers=["device", "mean ms", "min ms", "max ms",
                 "est err mean", "est err max"],
        title=f"A7: per-device latency over {NUM_ARCHS} architectures",
    ))

    tau_rows = []
    reference = latencies[NUCLEO_F746ZG.name]
    for name in names:
        tau = kendall_tau(reference, latencies[name])
        tau_rows.append([name, f"{tau:+.3f}"])
    print(format_table(
        tau_rows,
        headers=["device", "Kendall-tau vs F746ZG ranking"],
        title="A7: does the F746ZG's latency ranking transfer?",
    ))

    # Shape 1: the estimator stays accurate after re-profiling any board.
    for name in names:
        assert np.mean(errors[name]) < 0.10, name
        assert np.max(errors[name]) < 0.20, name

    # Shape 2: mean latency follows board capability.
    assert latencies[NUCLEO_H743ZI.name].mean() < latencies[NUCLEO_F746ZG.name].mean()
    assert latencies[NUCLEO_F746ZG.name].mean() < latencies[NUCLEO_F411RE.name].mean()
    assert latencies[NUCLEO_F411RE.name].mean() < latencies[RP2040_PICO.name].mean()

    # Shape 3: rankings transfer strongly between the Cortex-M7 siblings...
    assert kendall_tau(reference, latencies[NUCLEO_H743ZI.name]) > 0.8
    # ... and remain positive but measurably weaker on the soft-float M0+,
    # whose cost structure (MAC-dominated, no im2col/spill effects) is the
    # MCU-specific bias the paper's per-device profiling captures.
    tau_pico = kendall_tau(reference, latencies[RP2040_PICO.name])
    tau_h7 = kendall_tau(reference, latencies[NUCLEO_H743ZI.name])
    assert 0.3 < tau_pico <= tau_h7
