"""Ablation A13 — regret against the enumerated oracle.

NAS-Bench-201 is exhaustively enumerable, so "best accuracy under X ms"
has an exact answer.  This harness enumerates the oracle table (all
canonical architectures: LUT latency + surrogate accuracy), then measures
how far the zero-shot searches land from that optimum at several latency
budgets:

* MicroNAS (latency-guided pruning with constraint adaptation),
* zero-shot random search under the same constraints (sample baseline).

Shapes that must hold: every found architecture is feasible; MicroNAS's
regret stays within a few accuracy points of the oracle at every budget;
and MicroNAS's total regret is no worse than the random baseline's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchdata import SurrogateModel
from repro.benchdata.oracle import build_oracle_table
from repro.eval.benchconfig import search_proxy_config
from repro.search import (
    HardwareConstraints,
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
    ZeroShotRandomSearch,
)
from repro.search.constraints import ConstraintChecker
from repro.searchspace.canonical import canonicalize
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

LATENCY_BUDGETS_MS = (600.0, 300.0, 180.0)
RANDOM_SAMPLES = 40


def run_regret_study(latency_estimator):
    table = build_oracle_table(latency_estimator)
    surrogate = SurrogateModel()
    config = MacroConfig.full()
    rows = []
    regrets = {"micronas": [], "random": []}
    for budget in LATENCY_BUDGETS_MS:
        constraints = HardwareConstraints(max_latency_ms=budget)
        checker = ConstraintChecker(constraints, macro_config=config,
                                    latency_estimator=latency_estimator)
        oracle_genotype, oracle_acc = table.best_under_latency(budget)

        objective = HybridObjective(
            proxy_config=search_proxy_config(),
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=latency_estimator,
        )
        micronas = MicroNASSearch(objective, seed=0).search_with_constraints(
            constraints, checker=checker
        )
        random_search = ZeroShotRandomSearch(
            objective.with_weights(ObjectiveWeights(latency=0.5)),
            num_samples=RANDOM_SAMPLES, seed=0,
        ).search(constraints=constraints, checker=checker)

        for name, result in (("micronas", micronas),
                             ("random", random_search)):
            genotype = canonicalize(result.genotype)
            acc = surrogate.mean_accuracy(genotype, "cifar10")
            latency = latency_estimator.estimate_ms(genotype)
            regret = oracle_acc - acc
            regrets[name].append(regret)
            rows.append([
                f"{budget:.0f}", name, f"{latency:.0f}",
                f"{acc:.2f}", f"{oracle_acc:.2f}", f"{regret:+.2f}",
            ])
    return table, rows, regrets


def test_oracle_regret(benchmark, latency_estimator):
    table, rows, regrets = benchmark.pedantic(
        run_regret_study, args=(latency_estimator,), rounds=1, iterations=1
    )
    print()
    print(format_table(
        rows,
        headers=["budget ms", "search", "found ms", "found ACC",
                 "oracle ACC", "regret"],
        title=f"A13: regret vs enumerated oracle "
              f"({len(table)} canonical archs)",
    ))
    print(f"mean regret: micronas {np.mean(regrets['micronas']):.2f}, "
          f"random {np.mean(regrets['random']):.2f} accuracy points")

    # Shape 1: found architectures respect their budgets (regret defined).
    for row in rows:
        assert float(row[2]) <= float(row[0]) * 1.001

    # Shape 2: zero-shot search lands within a few points of the oracle at
    # every budget — the substance of "similar accuracy" in the abstract.
    assert max(regrets["micronas"]) < 8.0
    assert np.mean(regrets["micronas"]) < 5.0

    # Shape 3: the structured pruning search is no worse than the random
    # zero-shot baseline on average.
    assert np.mean(regrets["micronas"]) <= np.mean(regrets["random"]) + 0.5
