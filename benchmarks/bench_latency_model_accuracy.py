"""Claim C4 — the LUT latency estimator is "accurate, reliable and simple".

Validates LUT composition against full-network on-board measurements over
a random architecture sample, on both supported MCUs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.device import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

SAMPLE_SIZE = 24


def run_validation(device):
    estimator = LatencyEstimator(device, config=MacroConfig.full())
    space = NasBench201Space()
    rows = []
    for genotype in space.sample(SAMPLE_SIZE, rng=99):
        estimate = estimator.estimate_ms(genotype)
        truth = estimator.ground_truth_ms(genotype)
        rows.append({
            "estimate_ms": estimate,
            "truth_ms": truth,
            "rel_error": abs(estimate - truth) / truth,
        })
    return rows


@pytest.mark.parametrize("device", [NUCLEO_F746ZG, NUCLEO_F411RE],
                         ids=lambda d: d.name)
def test_latency_model_accuracy(benchmark, device):
    rows = benchmark.pedantic(lambda: run_validation(device),
                              rounds=1, iterations=1)
    errors = np.array([r["rel_error"] for r in rows])
    print()
    print(format_table(
        [
            ["architectures", len(rows)],
            ["mean abs rel error", f"{errors.mean() * 100:.2f}%"],
            ["max abs rel error", f"{errors.max() * 100:.2f}%"],
            ["latency range",
             f"{min(r['truth_ms'] for r in rows):.0f}-"
             f"{max(r['truth_ms'] for r in rows):.0f} ms"],
        ],
        title=f"Claim C4: LUT estimator accuracy on {device.name}",
    ))
    # Shape: the paper calls the model "accurate and reliable"; per-op LUT
    # composition should sit within a few percent of whole-network runs.
    assert errors.mean() < 0.05
    assert errors.max() < 0.10


def test_estimator_preserves_ranking(benchmark):
    """Search only needs *relative* latency: ranking must be near-perfect."""
    from repro.eval import kendall_tau

    estimator = LatencyEstimator(NUCLEO_F746ZG, config=MacroConfig.full())
    space = NasBench201Space()
    archs = space.sample(SAMPLE_SIZE, rng=123)

    def run():
        estimates = [estimator.estimate_ms(g) for g in archs]
        truths = [estimator.ground_truth_ms(g) for g in archs]
        return kendall_tau(estimates, truths)

    tau = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nlatency rank fidelity: Kendall-tau = {tau:.3f}")
    assert tau > 0.9
