"""Fig. 2b — Kendall-τ vs NTK batch size.

The paper sweeps the NTK mini-batch size on a log scale and finds an
optimal region at batch 16-32: below it the kernel estimate is too noisy,
above it the correlation stops improving while cost keeps growing.  Three
trials plus their average are reported, as in the figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.benchconfig import bench_scale, correlation_proxy_config, num_correlation_archs
from repro.benchdata import SurrogateModel
from repro.eval import kendall_tau
from repro.proxies.ntk import ntk_condition_number
from repro.searchspace import NasBench201Space
from repro.utils import format_table

BATCH_SIZES = (4, 8, 16, 32, 64) if bench_scale() == "reduced" else (4, 8, 16, 32, 64, 128)
NUM_TRIALS = 3


def run_fig2b():
    base_config = correlation_proxy_config()
    surrogate = SurrogateModel()
    space = NasBench201Space()
    archs = space.sample(num_correlation_archs(), rng=555)
    accs = [surrogate.mean_accuracy(g, "cifar10") for g in archs]

    taus = np.zeros((NUM_TRIALS, len(BATCH_SIZES)))
    for trial in range(NUM_TRIALS):
        for b_idx, batch in enumerate(BATCH_SIZES):
            config = base_config.with_batch_size(batch).with_seed(1000 + trial)
            ks = np.array([ntk_condition_number(g, config) for g in archs])
            ks[~np.isfinite(ks)] = 1e30
            taus[trial, b_idx] = kendall_tau(-ks, accs)
    return taus


def test_fig2b_batch_size(benchmark):
    taus = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)
    avg = taus.mean(axis=0)
    print()
    rows = [
        [f"batch {b}"] + [f"{taus[t, i]:+.3f}" for t in range(NUM_TRIALS)]
        + [f"{avg[i]:+.3f}"]
        for i, b in enumerate(BATCH_SIZES)
    ]
    print(format_table(
        rows,
        headers=["Batch size"] + [f"trial {t+1}" for t in range(NUM_TRIALS)]
        + ["avg tau"],
        title="Fig. 2b: Kendall-tau vs NTK batch size",
    ))
    batch_list = list(BATCH_SIZES)
    i16 = batch_list.index(16)
    i4 = batch_list.index(4)
    # Shape 1: batch 16+ beats the smallest batch (noise regime).
    assert max(avg[i16:]) > avg[i4], "larger batches should denoise the NTK"
    # Shape 2: the recommended 16-32 region is near-optimal — going beyond
    # it buys little (within a small margin of the best tau overall).
    assert max(avg[i16:i16 + 2]) >= avg.max() - 0.08
    # Shape 3: the signal is usable at the paper's operating point.
    assert max(avg[i16:i16 + 2]) > 0.25
