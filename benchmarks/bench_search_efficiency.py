"""Claim C1 — search efficiency vs µNAS (paper: ~1104×, 552 h vs 0.43 h).

Accounting reproduced from the paper: the µNAS-style baseline pays
(simulated) full training GPU-time for every candidate aging evolution
evaluates; MicroNAS pays only measured zero-shot proxy wall-clock.
"""

from __future__ import annotations

import pytest

from repro.eval.benchconfig import search_proxy_config
from repro.benchdata import SurrogateModel
from repro.search import (
    ConstrainedEvolutionarySearch,
    EvolutionConfig,
    HardwareConstraints,
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
)
from repro.utils import format_table
from repro.utils.timing import format_duration


def run_efficiency(latency_estimator):
    surrogate = SurrogateModel()

    objective = HybridObjective(
        proxy_config=search_proxy_config(),
        weights=ObjectiveWeights(latency=0.5),
        latency_estimator=latency_estimator,
    )
    micronas = MicroNASSearch(objective, seed=0).search()

    munas = ConstrainedEvolutionarySearch(
        EvolutionConfig(population_size=50, sample_size=10, cycles=600),
        constraints=HardwareConstraints(max_params=0.15e6),
        seed=0,
    ).search()

    return {
        "micronas_hours": micronas.search_gpu_hours,
        "micronas_evals": micronas.ledger.counts.get("pruning_candidates", 0),
        "micronas_acc": surrogate.mean_accuracy(micronas.genotype, "cifar10"),
        "munas_hours": munas.search_gpu_hours,
        "munas_evals": munas.ledger.counts.get("simulated_training", 0),
        "munas_acc": surrogate.mean_accuracy(munas.genotype, "cifar10"),
    }


def test_search_efficiency_vs_munas(benchmark, latency_estimator):
    stats = benchmark.pedantic(
        lambda: run_efficiency(latency_estimator), rounds=1, iterations=1
    )
    ratio = stats["munas_hours"] / stats["micronas_hours"]
    acc_gain = stats["micronas_acc"] - stats["munas_acc"]
    print()
    print(format_table(
        [
            ["uNAS (train-based)", stats["munas_evals"],
             format_duration(stats["munas_hours"] * 3600), f"{stats['munas_acc']:.2f}"],
            ["MicroNAS (zero-shot)", stats["micronas_evals"],
             format_duration(stats["micronas_hours"] * 3600),
             f"{stats['micronas_acc']:.2f}"],
            ["efficiency ratio", "-", f"{ratio:.0f}x", f"+{acc_gain:.2f} acc"],
        ],
        headers=["method", "candidates", "search time", "CIFAR-10 acc"],
        title="Claim C1: search efficiency (paper: 1104x, +6.2 accuracy)",
    ))
    # Shape: zero-shot search is >= 3 orders of magnitude cheaper and finds
    # a better model than the tightly-constrained train-based baseline.
    assert ratio > 500.0
    assert acc_gain > 0.0
