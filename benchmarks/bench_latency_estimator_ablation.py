"""Ablation A9 — why a LUT and not a cheaper latency model?

The paper asserts FLOPs "don't represent ... real-world hardware
performance" and builds a profiled LUT instead (§II-B).  This harness
quantifies that design choice: three estimators, each calibrated honestly
on the same simulated board, evaluated against whole-network on-board
measurements of a held-out architecture sample.

* FLOPs-proportional (`latency = α·F + β`) — what FLOPs-guided search assumes,
* per-layer linear regression over kernel features — a hand-built
  analytical model,
* the paper's per-op LUT composition.

Shapes that must hold: the LUT is best on *both* mean and worst-case
error and stays under 5 % mean; the cheap models' worst case is several
times the LUT's (their average looks fine because NB201 latency is
MAC-dominated, but individual architectures deviate — exactly the
"MCU-specific bias" the paper's profiling captures); and even the FLOPs
model ranks positively (which is why FLOPs-guided search works at all,
just worse than latency-guided; see C3).
"""

from __future__ import annotations

import pytest

from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency_models import (
    FlopsProportionalModel,
    LinearFeatureModel,
    LUTModel,
    compare_models,
    default_calibration_sample,
)
from repro.hardware.profiler import OnDeviceProfiler
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

NUM_CALIBRATION = 12
NUM_EVAL = 16


def run_estimator_ablation():
    config = MacroConfig.full()
    profiler = OnDeviceProfiler(NUCLEO_F746ZG)
    calibration = default_calibration_sample(NUM_CALIBRATION, rng=31)
    eval_archs = NasBench201Space().sample(NUM_EVAL, rng=412)

    models = [
        FlopsProportionalModel(config=config, profiler=profiler).fit(calibration),
        LinearFeatureModel(config=config, profiler=profiler).fit(),
        LUTModel(NUCLEO_F746ZG, config=config),
    ]
    return compare_models(models, eval_archs, config=config,
                          profiler=profiler)


def test_latency_estimator_ablation(benchmark):
    accuracies = benchmark.pedantic(run_estimator_ablation, rounds=1,
                                    iterations=1)
    print()
    print(format_table(
        [[a.name, f"{a.mean_rel_error * 100:.1f} %",
          f"{a.max_rel_error * 100:.1f} %", f"{a.kendall_tau:+.3f}"]
         for a in accuracies],
        headers=["estimator", "mean |err|", "max |err|", "rank tau"],
        title=f"A9: latency estimators vs on-board truth "
              f"({NUM_EVAL} held-out archs, nucleo-f746zg)",
    ))
    by_name = {a.name: a for a in accuracies}
    flops = by_name["flops-proportional"]
    linear = by_name["linear-feature"]
    lut = by_name["lut (paper)"]

    # Shape 1: the paper's LUT wins on both mean and worst-case error.
    assert lut.mean_rel_error < flops.mean_rel_error
    assert lut.mean_rel_error < linear.mean_rel_error
    assert lut.max_rel_error < flops.max_rel_error
    assert lut.max_rel_error < linear.max_rel_error
    # Shape 2: the cheap models are unreliable in the tail — per-arch
    # deviations (pool/copy traffic, spill, SIMD waste) that FLOPs cannot
    # see.  "Reliable" is the paper's word for what the LUT adds.
    assert flops.max_rel_error > 3 * lut.max_rel_error
    assert linear.max_rel_error > 3 * lut.max_rel_error
    # Shape 3: the LUT is accurate in absolute terms (paper: "accurate,
    # reliable and simple").
    assert lut.mean_rel_error < 0.05
    assert lut.kendall_tau > 0.9
    # Shape 4: FLOPs still ranks positively (why FLOPs-guided search is a
    # usable, if weaker, alternative — paper §III).
    assert flops.kendall_tau > 0.3
