"""Async-runtime overlap: generation barriers vs steady-state scheduling.

Two measurements, both writing ``BENCH_async.json``:

1. **Executor-level overlap** — the same multiset of heterogeneous
   (sleep-based) task durations is pushed through a
   :class:`~repro.runtime.async_pool.FuturePool` twice: once with a
   barrier after every generation (submit a batch, ``gather_all``, repeat
   — the PR-2 ``warm_population`` shape) and once steady-state (keep
   ``n_workers`` tasks in flight, submit the next the moment one lands).
   Sleeps release the GIL, so worker overlap is real even on a 1-core CI
   box, and the duration multiset is identical by construction — the gap
   is pure scheduling.

2. **Search-level overlap** — a generational evolutionary loop (barrier
   per generation of children) vs
   :class:`~repro.search.evolutionary.SteadyStateEvolutionarySearch`
   (event-driven), both over the *same* async executor transport, same
   fork workers, same total candidate budget.  Worker chunks are padded
   with a simulated per-candidate evaluation latency whose long-tail
   heterogeneity is keyed deterministically off the canonical index —
   modelling paper-scale proxy cost (or remote/profiled evaluation),
   where stragglers are exactly what generation barriers stall on.

Wall-clock and the measured **worker idle fraction** are recorded for
both policies; steady-state must win both comparisons.  Indicator
determinism (async == serial bit-for-bit) is re-checked at bench scale.

Run directly (``python benchmarks/bench_async_overlap.py``) or via
pytest (``pytest benchmarks/bench_async_overlap.py``).
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.engine import Engine
from repro.eval.benchconfig import bench_scale, search_proxy_config
from repro.proxies.base import ProxyConfig
from repro.runtime.async_pool import AsyncPopulationExecutor, FuturePool
from repro.runtime.pool import _evaluate_genotype_chunk
from repro.search.evolutionary import (
    EvolutionConfig,
    SteadyStateEvolutionarySearch,
)
from repro.search.objective import HybridObjective
from repro.search.pareto import non_dominated_sort
from repro.searchspace.space import NasBench201Space
from repro.utils.rng import new_rng
from repro.utils.timing import Timer, format_duration

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async.json"

N_WORKERS = 4
# Executor-level workload: per generation, one long straggler pinning a
# worker while the rest are short — the shape barriers are worst at.
GENERATIONS = 5
GENERATION_SIZE = 12
STRAGGLER_S = 0.12
SHORT_S = 0.004
#: Straggler frequency for the search-level pad (1 in N canonical forms).
STRAGGLER_MODULUS = 4

# Search-level workload.
POPULATION_SIZE = 12
CYCLES = 48  # children after the initial population


# ----------------------------------------------------------------------
# Part 1: pure executor scheduling
# ----------------------------------------------------------------------
def _durations() -> List[List[float]]:
    return [
        [STRAGGLER_S if task == 0 else SHORT_S
         for task in range(GENERATION_SIZE)]
        for _ in range(GENERATIONS)
    ]


def _sleep_task(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _run_barrier_pool() -> Dict:
    with FuturePool(n_workers=N_WORKERS, mode="thread") as pool:
        with Timer() as timer:
            for generation in _durations():
                for seconds in generation:
                    pool.submit(_sleep_task, seconds)
                for result in pool.gather_all():  # the generation barrier
                    pool.record_busy(result.value)
        return {"wall_seconds": timer.elapsed,
                "idle_fraction": pool.idle_fraction()}


def _run_steady_pool() -> Dict:
    tasks = [seconds for generation in _durations()
             for seconds in generation]
    with FuturePool(n_workers=N_WORKERS, mode="thread") as pool:
        with Timer() as timer:
            queue = deque(tasks)
            for _ in range(min(N_WORKERS, len(queue))):
                pool.submit(_sleep_task, queue.popleft())
            while pool.num_pending:
                for result in pool.gather(1):
                    pool.record_busy(result.value)
                while queue and pool.num_pending < N_WORKERS:
                    pool.submit(_sleep_task, queue.popleft())
        return {"wall_seconds": timer.elapsed,
                "idle_fraction": pool.idle_fraction()}


# ----------------------------------------------------------------------
# Part 2: generational-barrier search vs steady-state search
# ----------------------------------------------------------------------
def _padded_worker(payload):
    """Real chunk evaluation plus simulated per-candidate eval latency.

    The pad is keyed off the canonical index so both policies sleep the
    same amount for the same candidate: a deterministic long tail (1 in
    ``STRAGGLER_MODULUS`` candidates is a straggler), modelling
    profiled-device or paper-scale proxy evaluation where per-candidate
    cost varies widely.  The sleep dominates the tiny proxy compute by
    design — the benchmark isolates *scheduling*, and CPU-bound compute
    serialises on 1-core CI boxes for both policies equally anyway.
    """
    rows, seconds = _evaluate_genotype_chunk(payload)
    padded = 0.0
    for index, _ in rows:
        padded += (STRAGGLER_S if index % STRAGGLER_MODULUS == 0
                   else SHORT_S)
    time.sleep(padded)
    return rows, seconds + padded


def _pareto_parents(population):
    vectors = np.array([[row["ntk"], -row["linear_regions"]]
                        for _, row in population])
    front = non_dominated_sort(vectors)[0]
    return [population[i][0] for i in front]


def _run_barrier_search(proxy_config) -> Dict:
    """Generational evolution: every batch of children is a barrier."""
    rng = new_rng(11)
    space = NasBench201Space()
    objective = HybridObjective(engine=Engine(proxy_config=proxy_config))
    generations = CYCLES // POPULATION_SIZE
    with AsyncPopulationExecutor(n_workers=N_WORKERS, chunk_size=1,
                                 mode="fork",
                                 genotype_worker=_padded_worker) as executor:
        with Timer() as timer:
            current = space.sample(POPULATION_SIZE, rng=rng, unique=False)
            table = objective.evaluate_population(current,
                                                  executor=executor)
            population = deque(zip(current, table.rows()),
                               maxlen=POPULATION_SIZE)
            for _ in range(generations):
                parents = _pareto_parents(list(population))
                children = [
                    space.mutate(parents[int(rng.integers(len(parents)))],
                                 rng=rng)
                    for _ in range(POPULATION_SIZE)
                ]
                # The barrier: nothing mutates until the whole generation
                # (straggler included) has been evaluated.
                table = objective.evaluate_population(children,
                                                      executor=executor)
                population.extend(zip(children, table.rows()))
        stats = executor.stats
        return {
            "wall_seconds": timer.elapsed,
            "idle_fraction": stats.idle_fraction,
            "tasks": stats.tasks,
            "evaluated_candidates": POPULATION_SIZE * (generations + 1),
        }


def _run_steady_search(proxy_config) -> Dict:
    objective = HybridObjective(engine=Engine(proxy_config=proxy_config))
    with AsyncPopulationExecutor(n_workers=N_WORKERS, chunk_size=1,
                                 mode="fork",
                                 genotype_worker=_padded_worker) as executor:
        with Timer() as timer:
            SteadyStateEvolutionarySearch(
                objective,
                EvolutionConfig(population_size=POPULATION_SIZE,
                                cycles=CYCLES),
                seed=11,
                executor=executor,
            ).search()
        stats = executor.stats
        return {
            "wall_seconds": timer.elapsed,
            "idle_fraction": stats.idle_fraction,
            "tasks": stats.tasks,
            "evaluated_candidates": POPULATION_SIZE + CYCLES,
        }


def _check_bit_identical(proxy_config) -> bool:
    population = NasBench201Space().sample(24, rng=9)
    serial = Engine(proxy_config=proxy_config).evaluate_population(population)
    with AsyncPopulationExecutor(n_workers=N_WORKERS, chunk_size=3,
                                 mode="fork") as executor:
        table = Engine(proxy_config=proxy_config).evaluate_population(
            population, executor=executor
        )
    return all(np.array_equal(serial.columns[name], table.columns[name])
               for name in serial.columns)


def _search_part_proxy_config() -> ProxyConfig:
    """Smallest proxy scale that exercises every code path: the search
    part measures scheduling, so the simulated evaluation pad should
    dominate real compute (which 1-core CI serialises for both policies
    identically, compressing the very gap under measurement)."""
    return ProxyConfig(init_channels=4, cells_per_stage=1, input_size=8,
                       ntk_batch_size=8, lr_num_samples=32, lr_input_size=4,
                       lr_channels=2, seed=7)


def run_async_overlap() -> Dict:
    proxy_config = _search_part_proxy_config()
    barrier_pool = _run_barrier_pool()
    steady_pool = _run_steady_pool()
    barrier_search = _run_barrier_search(proxy_config)
    steady_search = _run_steady_search(proxy_config)
    result = {
        "bench_scale": bench_scale(),
        "n_workers": N_WORKERS,
        "executor_workload": {
            "generations": GENERATIONS,
            "generation_size": GENERATION_SIZE,
            "straggler_seconds": STRAGGLER_S,
            "short_seconds": SHORT_S,
        },
        "executor_barrier": barrier_pool,
        "executor_steady_state": steady_pool,
        "executor_speedup": (barrier_pool["wall_seconds"]
                             / max(steady_pool["wall_seconds"], 1e-9)),
        "search_budget": {"population_size": POPULATION_SIZE,
                          "cycles": CYCLES},
        "search_barrier": barrier_search,
        "search_steady_state": steady_search,
        "search_speedup": (barrier_search["wall_seconds"]
                           / max(steady_search["wall_seconds"], 1e-9)),
        "async_bit_identical": _check_bit_identical(search_proxy_config()),
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_async_overlap(benchmark):
    result = benchmark.pedantic(run_async_overlap, rounds=1, iterations=1)
    _report(result)
    assert result["async_bit_identical"]
    # Identical task multiset: any gap is scheduling, and the barrier
    # must lose it (5% margin keeps 1-core CI timing noise out).
    assert result["executor_speedup"] >= 1.05
    assert result["search_speedup"] >= 1.05
    # The barrier leaves more worker capacity idle than steady-state.
    assert (result["executor_barrier"]["idle_fraction"]
            > result["executor_steady_state"]["idle_fraction"])


def _report(result: Dict) -> None:
    print()
    for scope in ("executor", "search"):
        barrier = result[f"{scope}_barrier"]
        steady = result[f"{scope}_steady_state"]
        print(f"{scope:9s} barrier      : "
              f"{format_duration(barrier['wall_seconds'])}"
              f"  (idle {barrier['idle_fraction']:.0%})")
        print(f"{scope:9s} steady-state : "
              f"{format_duration(steady['wall_seconds'])}"
              f"  (idle {steady['idle_fraction']:.0%})"
              f"  -> {result[f'{scope}_speedup']:.2f}x")
    print(f"async bit-identical : {result['async_bit_identical']}")
    print(f"written             : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_async_overlap())
