"""Claim C3 — latency-guided search beats FLOPs-guided search.

The paper: "The latency-guided search demonstrates superior and more
balanced performance than the FLOPs-guided search, attributed to
MCU-specific bias in our latency modeling."  The bias in our cycle model:
1×1 convolutions skip im2col (cheap per MAC), pooling/copies are
memory-bound (expensive per FLOP) — so FLOPs misprice ops on the MCU.
"""

from __future__ import annotations

import pytest

from repro.eval.benchconfig import search_proxy_config
from repro.benchdata import SurrogateModel
from repro.hardware.latency import measure_ground_truth_ms
from repro.proxies.flops import count_flops
from repro.search import HybridObjective, MicroNASSearch, ObjectiveWeights
from repro.utils import format_table

GUIDANCE_WEIGHT = 0.5


def run_comparison(latency_estimator):
    surrogate = SurrogateModel()
    proxy_config = search_proxy_config()

    flops_obj = HybridObjective(
        proxy_config=proxy_config,
        weights=ObjectiveWeights(flops=GUIDANCE_WEIGHT),
        latency_estimator=latency_estimator,
    )
    flops_guided = MicroNASSearch(flops_obj, seed=0).search()

    latency_obj = HybridObjective(
        proxy_config=proxy_config,
        weights=ObjectiveWeights(latency=GUIDANCE_WEIGHT),
        latency_estimator=latency_estimator,
    )
    latency_guided = MicroNASSearch(latency_obj, seed=0).search()

    def row(name, result):
        g = result.genotype
        return {
            "name": name,
            "flops_m": count_flops(g) / 1e6,
            "true_latency_ms": measure_ground_truth_ms(g),
            "acc": surrogate.mean_accuracy(g, "cifar10"),
        }

    return [row("FLOPs-guided", flops_guided),
            row("latency-guided", latency_guided)]


def test_latency_vs_flops_guided(benchmark, latency_estimator):
    rows = benchmark.pedantic(
        lambda: run_comparison(latency_estimator), rounds=1, iterations=1
    )
    print()
    print(format_table(
        [[r["name"], f"{r['flops_m']:.1f}", f"{r['true_latency_ms']:.1f}",
          f"{r['acc']:.2f}"] for r in rows],
        headers=["guidance", "FLOPs (M)", "measured latency (ms)", "ACC"],
        title="Claim C3: latency-guided vs FLOPs-guided search",
    ))
    flops_guided, latency_guided = rows
    # Shape: with fine-grained latency modelling, the latency-guided result
    # is at least as good on the deployment metric that matters (measured
    # MCU latency), and balanced on accuracy.
    assert latency_guided["true_latency_ms"] <= \
        flops_guided["true_latency_ms"] * 1.10
    balance_lat = latency_guided["acc"] / max(latency_guided["true_latency_ms"], 1e-9)
    balance_flops = flops_guided["acc"] / max(flops_guided["true_latency_ms"], 1e-9)
    assert balance_lat >= balance_flops * 0.9
