"""Extension A3 — peak-memory-guided search (paper §IV future work).

"Future experiments will incorporate peak memory usage modeling of MCUs to
guide the search."  We implement it: the search honours SRAM budgets via
the memory estimator (int8 deployment), sweeping the budget and reporting
the best feasible architecture per level — the MCUNet-style memory wall.
"""

from __future__ import annotations

import pytest

from repro.eval.benchconfig import search_proxy_config
from repro.benchdata import SurrogateModel
from repro.hardware.memory import MemoryEstimator
from repro.search import (
    HardwareConstraints,
    HybridObjective,
    ObjectiveWeights,
    ZeroShotRandomSearch,
)
from repro.search.constraints import ConstraintChecker
from repro.searchspace.network import MacroConfig

from repro.utils import format_table

#: int8 deployment (the realistic MCU regime; float32 cannot fit flash).
ELEMENT_BYTES = 1
SRAM_BUDGETS_KB = (256, 96, 48)
NUM_SAMPLES = 40


def run_sweep(latency_estimator):
    surrogate = SurrogateModel()
    memory = MemoryEstimator(MacroConfig.full(), element_bytes=ELEMENT_BYTES)
    rows = []
    for budget_kb in SRAM_BUDGETS_KB:
        constraints = HardwareConstraints(max_sram_bytes=budget_kb * 1024)
        objective = HybridObjective(
            proxy_config=search_proxy_config(),
            weights=ObjectiveWeights(latency=0.25),
            latency_estimator=latency_estimator,
        )
        checker = ConstraintChecker(constraints,
                                    macro_config=MacroConfig.full(),
                                    latency_estimator=latency_estimator,
                                    memory_estimator=memory)
        search = ZeroShotRandomSearch(objective, num_samples=NUM_SAMPLES, seed=0)
        result = search.search(constraints=constraints, checker=checker)
        report = memory.report(result.genotype)
        rows.append({
            "budget_kb": budget_kb,
            "peak_kb": report.peak_sram_bytes / 1024,
            "acc": surrogate.mean_accuracy(result.genotype, "cifar10"),
            "feasible": report.peak_sram_bytes <= budget_kb * 1024,
        })
    return rows


def test_memory_guided_search(benchmark, latency_estimator):
    rows = benchmark.pedantic(
        lambda: run_sweep(latency_estimator), rounds=1, iterations=1
    )
    print()
    print(format_table(
        [[f"{r['budget_kb']} KB", f"{r['peak_kb']:.0f} KB", f"{r['acc']:.2f}",
          "yes" if r["feasible"] else "NO"] for r in rows],
        headers=["SRAM budget", "peak SRAM", "ACC", "feasible"],
        title="Extension A3: peak-memory-guided search (int8)",
    ))
    # Shape 1: discovered models respect their budgets.
    assert all(r["feasible"] for r in rows)
    # Shape 2: accuracy degrades (weakly) as the memory wall tightens.
    accs = [r["acc"] for r in rows]
    assert accs[-1] <= accs[0] + 1.0
