"""Engine-path vs pre-PR per-candidate objective evaluation.

Times a 64-candidate ``HybridObjective`` population evaluation two ways:

* **old path** — the seed implementation's shape: every candidate pays an
  inline reference-mode evaluation (one backward per NTK sample, one
  forward per probe line), no canonical deduplication, no cache.
* **engine path** — ``HybridObjective.score_genotypes``, i.e. the batched
  evaluation engine: vectorized kernels + canonicalization-aware cache.

Also validates the vectorization: batched proxies must match the
reference-mode values within 1e-6 relative tolerance on the whole
population.  Results land in ``BENCH_engine.json`` at the repo root so the
perf trajectory is tracked from this PR onward.

Run directly (``python benchmarks/bench_engine_speedup.py``) or via pytest
(``pytest benchmarks/bench_engine_speedup.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.eval.benchconfig import bench_scale, search_proxy_config
from repro.eval.correlation import kendall_tau
from repro.proxies.flops import count_flops
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import Timer, format_duration

POPULATION_SIZE = 64
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _old_path_rows(population: List[Genotype], proxy_config,
                   macro_config: MacroConfig) -> List[Dict[str, float]]:
    """The seed code's per-candidate loop: inline, uncached, reference-mode."""
    reference = proxy_config.reference()
    rows = []
    for genotype in population:
        rows.append({
            "ntk": ntk_condition_number(genotype, reference),
            "linear_regions": count_line_regions(genotype, reference),
            "flops": float(count_flops(genotype, macro_config)),
            "latency": 0.0,
        })
    return rows


def run_engine_speedup() -> Dict:
    proxy_config = search_proxy_config()
    macro_config = MacroConfig.full()
    weights = ObjectiveWeights(flops=0.5)
    population = NasBench201Space().sample(POPULATION_SIZE, rng=42)

    objective = HybridObjective(proxy_config=proxy_config, weights=weights,
                                macro_config=macro_config)

    with Timer() as old_timer:
        old_rows = _old_path_rows(population, proxy_config, macro_config)
        old_scores = objective.combined_ranks(old_rows)

    with Timer() as engine_timer:
        engine_scores = objective.score_genotypes(population)

    # Warm repeat: a search loop revisiting the same population (mutation
    # neighbourhoods, outer constraint rounds) pays only cache lookups.
    with Timer() as warm_timer:
        objective.score_genotypes(population)

    # Vectorization equivalence on the full population.  The engine seeds
    # proxies from the *canonical* index, so compare like for like: batched
    # vs reference values of each canonical form.
    table = objective.evaluate_population(population)
    max_ntk_rel = 0.0
    ntk_nonfinite_agree = True
    lr_exact = True
    reference_engine = HybridObjective(proxy_config=proxy_config.reference(),
                                       weights=weights,
                                       macro_config=macro_config)
    reference_table = reference_engine.evaluate_population(population)
    for batched, reference in zip(table.rows(), reference_table.rows()):
        ref_k, bat_k = reference["ntk"], batched["ntk"]
        if np.isfinite(ref_k) and ref_k != 0.0:
            max_ntk_rel = max(max_ntk_rel, abs(bat_k - ref_k) / abs(ref_k))
        else:
            ntk_nonfinite_agree &= (ref_k == bat_k)
        lr_exact &= (batched["linear_regions"] == reference["linear_regions"])

    stats = objective.engine.cache.stats
    result = {
        "bench_scale": bench_scale(),
        "population_size": POPULATION_SIZE,
        "unique_canonical": table.unique_canonical,
        "old_path_seconds": old_timer.elapsed,
        "engine_seconds": engine_timer.elapsed,
        "warm_engine_seconds": warm_timer.elapsed,
        "speedup": old_timer.elapsed / engine_timer.elapsed,
        "warm_speedup": old_timer.elapsed / max(warm_timer.elapsed, 1e-9),
        "max_ntk_rel_err": max_ntk_rel,
        "ntk_nonfinite_agree": bool(ntk_nonfinite_agree),
        "lr_bit_identical": bool(lr_exact),
        # Engine values are canonical-seeded, so old/engine scores differ
        # for non-canonical genotypes; ranks must still correlate strongly.
        "score_kendall_tau": float(kendall_tau(old_scores, engine_scores)),
        "cache": {"hits": stats.hits, "misses": stats.misses,
                  "entries": stats.entries},
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_engine_speedup(benchmark):
    result = benchmark.pedantic(run_engine_speedup, rounds=1, iterations=1)
    _report(result)
    assert result["speedup"] >= 2.0
    assert result["max_ntk_rel_err"] < 1e-6
    assert result["ntk_nonfinite_agree"]
    assert result["lr_bit_identical"]


def _report(result: Dict) -> None:
    print()
    print(f"population            : {result['population_size']} "
          f"({result['unique_canonical']} unique canonical)")
    print(f"old path (per-candidate): "
          f"{format_duration(result['old_path_seconds'])}")
    print(f"engine path (cold)    : {format_duration(result['engine_seconds'])}"
          f"  -> {result['speedup']:.2f}x")
    print(f"engine path (warm)    : "
          f"{format_duration(result['warm_engine_seconds'])}"
          f"  -> {result['warm_speedup']:.0f}x")
    print(f"max NTK rel error     : {result['max_ntk_rel_err']:.2e}")
    print(f"LR bit-identical      : {result['lr_bit_identical']}")
    print(f"written               : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_engine_speedup())
