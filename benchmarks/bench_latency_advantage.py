"""Claim C2 — 1.59×–3.23× latency advantage across constraint levels.

The paper: "Our hardware-aware strategy provides a latency advantage of
1.59× to 3.23× with negligible performance trade-offs."  We sweep the
latency-indicator weight (the paper's tunable constraint knob) and report
the speedup over the TE-NAS reference at each setting.
"""

from __future__ import annotations

import pytest

from repro.eval.benchconfig import search_proxy_config
from repro.benchdata import SurrogateModel
from repro.search import (
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
    TENASSearch,
)
from repro.utils import format_table

LATENCY_WEIGHTS = (0.25, 0.5, 0.75)


def run_sweep(latency_estimator):
    surrogate = SurrogateModel()
    proxy_config = search_proxy_config()
    tenas = TENASSearch(proxy_config=proxy_config, seed=0).search()
    ref_latency = latency_estimator.estimate_ms(tenas.genotype)
    ref_acc = surrogate.mean_accuracy(tenas.genotype, "cifar10")

    rows = [{"weight": 0.0, "latency_ms": ref_latency, "speedup": 1.0,
             "acc": ref_acc, "arch": tenas.arch_str}]
    for weight in LATENCY_WEIGHTS:
        objective = HybridObjective(
            proxy_config=proxy_config,
            weights=ObjectiveWeights(latency=weight),
            latency_estimator=latency_estimator,
        )
        result = MicroNASSearch(objective, seed=0).search()
        latency = latency_estimator.estimate_ms(result.genotype)
        rows.append({
            "weight": weight,
            "latency_ms": latency,
            "speedup": ref_latency / latency,
            "acc": surrogate.mean_accuracy(result.genotype, "cifar10"),
            "arch": result.arch_str,
        })
    return rows


def test_latency_advantage_sweep(benchmark, latency_estimator):
    rows = benchmark.pedantic(
        lambda: run_sweep(latency_estimator), rounds=1, iterations=1
    )
    print()
    print(format_table(
        [[f"{r['weight']:.2f}", f"{r['latency_ms']:.1f}", f"{r['speedup']:.2f}x",
          f"{r['acc']:.2f}"] for r in rows],
        headers=["latency weight", "latency (ms)", "speedup vs TE-NAS", "ACC"],
        title="Claim C2: latency advantage across constraint levels",
    ))
    reference = rows[0]
    guided = rows[1:]
    speedups = [r["speedup"] for r in guided]
    # Shape 1: the paper's band — at least one setting in [1.5, inf) speedup.
    assert max(speedups) > 1.5
    # Shape 2: some setting keeps accuracy close to the reference
    # ("negligible performance trade-offs").
    best_acc = max(r["acc"] for r in guided)
    assert best_acc > reference["acc"] - 3.0
    # Shape 3: increasing the weight never increases latency (monotone knob).
    lats = [r["latency_ms"] for r in guided]
    assert all(b <= a * 1.05 for a, b in zip(lats, lats[1:]))
