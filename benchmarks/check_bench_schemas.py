"""Validate every ``BENCH_*.json`` artifact against its minimal schema.

The repo's benchmark scripts persist their headline numbers as
``BENCH_<name>.json`` at the repo root; downstream readers (the ROADMAP
acceptance bars, plotting, CI dashboards) parse them by key.  A bench
refactor that silently renames or drops a key breaks those readers long
after the offending commit — so this checker pins, per artifact, the
top-level keys that must exist, and runs as a tier-1 test
(``tests/test_bench_schemas.py``).

Rules:

* every known artifact that exists must carry its required keys
  (extra keys are fine — schemas are floors, not ceilings);
* every value must be strict JSON: ``NaN``/``Infinity`` are rejected
  (they round-trip through Python's ``json`` but are not JSON, and
  silently break stricter parsers);
* an *unknown* ``BENCH_*.json`` at the repo root is a failure — new
  benches must register their schema here;
* a known artifact that has not been generated yet is skipped (benches
  run on demand, not in CI).

Run standalone: ``python benchmarks/check_bench_schemas.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required top-level keys per artifact.  Floors: benches may add keys
#: freely, but removing/renaming one of these breaks a reader somewhere.
SCHEMAS: Dict[str, List[str]] = {
    "BENCH_async.json": [
        "bench_scale", "n_workers", "executor_workload",
        "executor_barrier", "executor_steady_state", "executor_speedup",
        "search_budget", "search_barrier", "search_steady_state",
        "search_speedup", "async_bit_identical",
    ],
    "BENCH_engine.json": [
        "bench_scale", "population_size", "unique_canonical",
        "old_path_seconds", "engine_seconds", "warm_engine_seconds",
        "speedup", "warm_speedup", "max_ntk_rel_err",
        "ntk_nonfinite_agree", "lr_bit_identical", "score_kendall_tau",
        "cache",
    ],
    "BENCH_faults.json": ["bench_scale", "overhead", "faulted"],
    "BENCH_fleet.json": [
        "bench_scale", "n_chunks", "pad_seconds", "scaling",
        "speedup_4x_vs_1", "fleet_bit_identical", "elastic",
    ],
    "BENCH_parallel.json": [
        "bench_scale", "population_size", "unique_canonical", "n_workers",
        "cpu_count", "pool_mode", "serial_cold_seconds",
        "pool_cold_seconds", "store_load_seconds", "warm_eval_seconds",
        "warm_total_seconds", "pool_speedup", "warm_speedup",
        "pool_bit_identical", "warm_bit_identical",
        "store_entries_persisted", "store_entries_loaded",
        "stale_store_entries_loaded", "pool",
    ],
    "BENCH_precision.json": [
        "bench_scale", "kernel", "population", "rank_agreement",
    ],
    "BENCH_scenarios.json": [
        "bench_scale", "devices", "objective_sets", "cells", "samples",
        "unique_canonical", "rows_computed_cold", "rows_computed_warm",
        "trainless_exactly_once", "store_rows_persisted", "lut_warm_reuse",
        "int8_vs_float32_spearman", "default_bit_identical",
    ],
    "BENCH_store.json": [
        "store_sizes", "delta_rows", "points", "format2_flatness_ratio",
        "speedup_at_largest",
        # Read-side (warm-start) scaling: selective/index load modes.
        "load_store_sizes", "load_points", "index_load_flatness_ratio",
        "selective_load_speedup_at_largest",
        "index_load_speedup_at_largest", "index_hit_rate",
        "read_paths_bit_identical",
    ],
    "BENCH_telemetry.json": [
        "bench_scale", "overhead", "traced",
    ],
}


def _reject_constant(token: str):
    raise ValueError(f"non-JSON constant {token!r} (NaN/Infinity) "
                     "is not allowed in BENCH artifacts")


def _load_strict(path: Path) -> Dict:
    payload = json.loads(path.read_text(encoding="utf-8"),
                         parse_constant=_reject_constant)
    if not isinstance(payload, dict):
        raise ValueError("top level must be a JSON object")
    return payload


def check_bench_schemas(root: Path = REPO_ROOT) -> List[str]:
    """Every schema violation found, as human-readable strings."""
    problems: List[str] = []
    present = {path.name: path for path in sorted(root.glob("BENCH_*.json"))}
    for name in sorted(set(present) - set(SCHEMAS)):
        problems.append(
            f"{name}: unknown BENCH artifact — register its schema in "
            f"benchmarks/check_bench_schemas.py")
    for name, required in sorted(SCHEMAS.items()):
        path = present.get(name)
        if path is None:
            continue  # not generated yet: benches run on demand
        try:
            payload = _load_strict(path)
        except (ValueError, json.JSONDecodeError) as exc:
            problems.append(f"{name}: {exc}")
            continue
        missing = [key for key in required if key not in payload]
        if missing:
            problems.append(f"{name}: missing required keys {missing}")
    return problems


def main() -> int:
    problems = check_bench_schemas()
    known = [name for name in sorted(SCHEMAS)
             if (REPO_ROOT / name).exists()]
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print(f"ok: {len(known)} BENCH artifacts validated "
          f"({len(SCHEMAS) - len(known)} not generated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
