"""Extension A11 — the whole trade-off curve, not one weighting of it.

MicroNAS picks its operating point through the hardware weights
(``w_F``/``w_L``); the C2 sweep showed each weight choice lands somewhere
on an accuracy/latency curve.  This harness computes that curve directly:
non-dominated sorting of a zero-shot sample over (trainless quality,
estimated latency), annotated with surrogate accuracy.

Shapes that must hold: the front is mutually non-dominated and monotone
(slower points buy strictly better trainless quality); its fastest point
is the population's fastest architecture; the best-quality end is
substantially more accurate (surrogate) than the fastest end — i.e. the
axis the trainless quality score orders is real; and the knee point sits
strictly between the extremes on both axes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchdata import SurrogateModel
from repro.eval.benchconfig import search_proxy_config
from repro.search import HybridObjective, ObjectiveWeights, ParetoZeroShotSearch
from repro.search.pareto import dominates
from repro.utils import format_table

NUM_SAMPLES = 40


def run_pareto(latency_estimator):
    objective = HybridObjective(
        proxy_config=search_proxy_config(),
        weights=ObjectiveWeights(latency=0.5),
        latency_estimator=latency_estimator,
    )
    search = ParetoZeroShotSearch(objective, num_samples=NUM_SAMPLES, seed=7)
    result = search.search()
    surrogate = SurrogateModel()
    accuracies = {
        point.genotype.to_index(): surrogate.mean_accuracy(point.genotype,
                                                           "cifar10")
        for point in result.front
    }
    return result, accuracies


def test_pareto_front(benchmark, latency_estimator):
    result, accuracies = benchmark.pedantic(
        run_pareto, args=(latency_estimator,), rounds=1, iterations=1
    )
    knee = result.knee_point()
    print()
    print(format_table(
        [[("knee -> " if p is knee else "") + p.genotype.to_arch_str()[:38],
          f"{p.latency_ms:.0f}",
          f"{p.quality_rank:.1f}",
          f"{accuracies[p.genotype.to_index()]:.2f}"]
         for p in result.front],
        headers=["architecture", "latency ms", "quality rank (low=good)",
                 "surrogate ACC"],
        title=f"A11: quality/latency Pareto front "
              f"({len(result.front)} of {NUM_SAMPLES} sampled, "
              f"{result.num_fronts} fronts)",
    ))

    # Shape 1: mutual non-domination and monotone trade-off.
    for a in result.front:
        for b in result.front:
            assert not dominates(a.objectives(False), b.objectives(False))
    latencies = [p.latency_ms for p in result.front]
    qualities = [p.quality_rank for p in result.front]
    assert latencies == sorted(latencies)
    assert qualities == sorted(qualities, reverse=True)

    # Shape 2: a real curve, not a single point.
    assert len(result.front) >= 3

    # Shape 3: the quality axis is meaningful — the best-quality end beats
    # the fastest end on surrogate accuracy by a clear margin.
    acc_best = accuracies[result.best_quality().genotype.to_index()]
    acc_fastest = accuracies[result.fastest().genotype.to_index()]
    assert acc_best > acc_fastest + 2.0

    # Shape 4: the knee is strictly interior when the front has >= 3 points.
    assert result.fastest().latency_ms <= knee.latency_ms
    assert knee.latency_ms <= result.best_quality().latency_ms
    assert knee.quality_rank <= result.fastest().quality_rank
