"""Device-matrix scenario study: shared trainless pass, per-cell pricing.

The cost-model registry promises three measurable properties:

* **Exactly-once trainless evaluation** — one population pass serves
  every (device, objective-set) cell; the store row count proves the
  sharing (``rows_computed == 3 x unique_canonical`` cold, ``0`` warm).
* **Cross-device LUT warm reuse** — a warm-started matrix re-prices
  every board from persisted latency LUTs without re-profiling.
* **Rank stability across deploy precisions** — int8 vs float32 latency
  orderings agree strongly (Spearman), so a float32 search transfers to
  an int8 deployment, while energy re-ranks *across* boards.

It also re-asserts the refactor's headline guarantee: with the default
latency-only float64 weights, the generalized objective reproduces the
legacy four-indicator rank combination bit-for-bit.

Results land in ``BENCH_scenarios.json`` at the repo root.  Run directly
(``python benchmarks/bench_device_matrix.py``) or via pytest
(``pytest benchmarks/bench_device_matrix.py``).
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path
from typing import Dict

import numpy as np

from repro.engine.core import Engine
from repro.eval.benchconfig import bench_scale, reduced_proxy_config
from repro.eval.correlation import spearman_rho
from repro.hardware.device import get_device
from repro.proxies.ranking import combine_ranks
from repro.runtime import RuntimeConfig, run_matrix
from repro.search.objective import (
    _DIRECTIONS,
    _INF_SENTINEL,
    HybridObjective,
    ObjectiveWeights,
)
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import format_duration

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

DEVICES = ("nucleo-f746zg", "nucleo-l432kc")
OBJECTIVE_SETS = ("latency", "energy,peak-mem")


def _population_size() -> int:
    return 64 if bench_scale() == "paper" else 24


def _matrix_config(store_dir: str) -> RuntimeConfig:
    return RuntimeConfig(samples=_population_size(), seed=11, fast=True,
                         store_dir=store_dir, devices=DEVICES,
                         objectives=OBJECTIVE_SETS)


def _precision_rank_stability(samples: int) -> Dict:
    """Spearman of int8 vs float32 latency rankings, per device."""
    population = NasBench201Space().sample(samples, rng=5)
    config = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                         input_channels=3, image_size=8)
    out: Dict[str, float] = {}
    for name in DEVICES:
        engine = Engine(proxy_config=reduced_proxy_config(seed=11),
                        macro_config=config, device=get_device(name))
        f32 = [engine.cost(g, "latency") for g in population]
        i8 = [engine.cost(g, "int8-latency") for g in population]
        out[name] = float(spearman_rho(f32, i8))
    return out


def _default_bit_identity(samples: int) -> bool:
    """Default latency-only weights == the legacy four-field combine."""
    population = NasBench201Space().sample(samples, rng=13)
    objective = HybridObjective(
        proxy_config=reduced_proxy_config(seed=11),
        weights=ObjectiveWeights(latency=0.5, flops=0.25),
    )
    scores = objective.score_genotypes(population)
    rows = objective.evaluate_population(population).rows()
    columns = {}
    for name in ("ntk", "linear_regions", "flops", "latency"):
        raw = np.array([row[name] for row in rows], dtype=float)
        raw[~np.isfinite(raw)] = _INF_SENTINEL
        columns[name] = raw
    legacy = combine_ranks(
        columns, _DIRECTIONS,
        {"ntk": 1.0, "linear_regions": 1.0, "flops": 0.25, "latency": 0.5})
    return bool(scores.tolist() == legacy.tolist())


def run_device_matrix_bench() -> Dict:
    store_dir = tempfile.mkdtemp(prefix="bench_matrix_store_")
    try:
        cold = run_matrix(_matrix_config(store_dir))
        warm = run_matrix(_matrix_config(store_dir))
        lut_keys = list(warm.store["luts"])
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    samples = _population_size()
    stability = _precision_rank_stability(samples)
    result = {
        "bench_scale": bench_scale(),
        "devices": list(DEVICES),
        "objective_sets": [s.split(",") for s in OBJECTIVE_SETS],
        "cells": len(cold.cells),
        "samples": samples,
        "unique_canonical": cold.unique_canonical,
        "rows_computed_cold": cold.trainless_evals["rows_computed"],
        "rows_computed_warm": warm.trainless_evals["rows_computed"],
        "trainless_exactly_once": bool(
            cold.trainless_evals["rows_computed"]
            == 3 * cold.unique_canonical
            and warm.trainless_evals["rows_computed"] == 0),
        "store_rows_persisted": cold.store["cache_saved"],
        "lut_warm_reuse": {
            "luts_persisted": len(lut_keys),
            "devices_covered": sorted(
                {str(key.get("device")) for key in lut_keys}),
            "reused_without_profiling": bool(
                warm.trainless_evals["rows_computed"] == 0
                and len(lut_keys) >= len(DEVICES)),
        },
        "int8_vs_float32_spearman": stability,
        "default_bit_identical": _default_bit_identity(samples),
        "cold_wall_seconds": cold.wall_seconds,
        "warm_wall_seconds": warm.wall_seconds,
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_device_matrix_scenarios(benchmark):
    result = benchmark.pedantic(run_device_matrix_bench, rounds=1,
                                iterations=1)
    _report(result)
    assert result["trainless_exactly_once"]
    assert result["lut_warm_reuse"]["reused_without_profiling"]
    assert result["default_bit_identical"]
    for rho in result["int8_vs_float32_spearman"].values():
        assert rho >= 0.95


def _report(result: Dict) -> None:
    print()
    print(f"matrix: {len(result['devices'])} devices x "
          f"{len(result['objective_sets'])} objective sets "
          f"= {result['cells']} cells, {result['samples']} archs "
          f"({result['unique_canonical']} unique)")
    print(f"trainless rows: {result['rows_computed_cold']} cold, "
          f"{result['rows_computed_warm']} warm "
          f"(exactly-once: {result['trainless_exactly_once']})")
    print(f"store: {result['store_rows_persisted']} rows persisted, "
          f"{result['lut_warm_reuse']['luts_persisted']} LUTs reused "
          f"across {result['lut_warm_reuse']['devices_covered']}")
    for device, rho in result["int8_vs_float32_spearman"].items():
        print(f"int8 vs float32 latency rank ({device}): "
              f"Spearman {rho:.4f}")
    print(f"default weights bit-identical: "
          f"{result['default_bit_identical']}")
    print(f"wall: cold {format_duration(result['cold_wall_seconds'])}, "
          f"warm {format_duration(result['warm_wall_seconds'])}")
    print(f"written : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_device_matrix_bench())
