"""Extension A6 — static tensor-arena planning (deployment memory story).

The peak-memory indicator (A3) says what an architecture *needs*; a real
MCU runtime must also *achieve* that peak with a static arena layout.
This harness compares three offset-assignment strategies over an
architecture sample at the deployment configuration (int8):

* ``no_reuse``       — private storage per tensor (what a naive exporter does),
* ``first_fit``      — execution-order placement with liveness reuse,
* ``greedy_by_size`` — the TFLite-Micro planner (largest tensors first).

Shapes that must hold: reuse saves a large fraction of the naive arena
(>2x on every architecture), the greedy plan sits close to the liveness
lower bound (within 25 % on average), and all plans are valid layouts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.memplan import arena_report
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

NUM_ARCHS = 24
ELEMENT_BYTES = 1  # int8 deployment


def run_planner_comparison():
    config = MacroConfig.full()
    archs = NasBench201Space().sample(NUM_ARCHS, rng=902)
    reports = [
        arena_report(g, config, element_bytes=ELEMENT_BYTES) for g in archs
    ]
    return archs, reports


def test_memory_planner(benchmark):
    archs, reports = benchmark.pedantic(run_planner_comparison, rounds=1,
                                        iterations=1)
    rows = []
    for genotype, rep in zip(archs[:8], reports[:8]):
        rows.append([
            genotype.to_arch_str()[:34] + "...",
            f"{rep.no_reuse_bytes / 1024:.0f}",
            f"{rep.first_fit_bytes / 1024:.1f}",
            f"{rep.greedy_by_size_bytes / 1024:.1f}",
            f"{rep.lower_bound_bytes / 1024:.1f}",
            f"{rep.reuse_saving * 100:.0f} %",
        ])
    print()
    print(format_table(
        rows,
        headers=["architecture", "naive KB", "first-fit KB",
                 "greedy KB", "bound KB", "saved"],
        title="A6: arena planning at int8 deployment (first 8 of "
              f"{NUM_ARCHS} archs)",
    ))
    savings = [r.reuse_saving for r in reports]
    gaps = [r.gap_to_lower_bound for r in reports]
    print(f"reuse saving: min {min(savings) * 100:.0f} %, "
          f"mean {np.mean(savings) * 100:.0f} %")
    print(f"gap to liveness bound: mean {np.mean(gaps) * 100:.1f} %, "
          f"max {max(gaps) * 100:.1f} %")

    # Shape 1: liveness reuse at least halves the naive arena everywhere.
    assert min(savings) > 0.5
    # Shape 2: the greedy plan is near-optimal on average.
    assert np.mean(gaps) < 0.25
    # Shape 3: ordering always holds: bound <= best <= naive.
    for rep in reports:
        assert rep.lower_bound_bytes <= rep.best_bytes <= rep.no_reuse_bytes
