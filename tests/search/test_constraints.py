"""Hardware constraint checking."""

import pytest

from repro.proxies.flops import count_flops, count_params
from repro.search.constraints import ConstraintChecker, HardwareConstraints
from repro.searchspace.network import MacroConfig


class TestHardwareConstraints:
    def test_empty_constrains_nothing(self):
        assert not HardwareConstraints().constrains_anything

    def test_any_bound_counts(self):
        assert HardwareConstraints(max_flops=1e6).constrains_anything
        assert HardwareConstraints(max_sram_bytes=1).constrains_anything


class TestChecker:
    @pytest.fixture(scope="class")
    def macro(self):
        return MacroConfig.full()

    def test_flops_violation_reported(self, macro, heavy_genotype):
        flops = count_flops(heavy_genotype, macro)
        checker = ConstraintChecker(
            HardwareConstraints(max_flops=flops / 2), macro_config=macro
        )
        violations = checker.violations(heavy_genotype)
        assert violations["flops"] == pytest.approx(1.0)
        assert not checker.satisfied(heavy_genotype)

    def test_satisfied_when_under_bounds(self, macro, heavy_genotype):
        flops = count_flops(heavy_genotype, macro)
        params = count_params(heavy_genotype, macro)
        checker = ConstraintChecker(
            HardwareConstraints(max_flops=flops * 2, max_params=params * 2),
            macro_config=macro,
        )
        assert checker.satisfied(heavy_genotype)
        assert checker.total_violation(heavy_genotype) == 0.0

    def test_latency_constraint(self, macro, heavy_genotype,
                                shared_latency_estimator):
        latency = shared_latency_estimator.estimate_ms(heavy_genotype)
        checker = ConstraintChecker(
            HardwareConstraints(max_latency_ms=latency * 0.5),
            macro_config=macro,
            latency_estimator=shared_latency_estimator,
        )
        assert "latency" in checker.violations(heavy_genotype)

    def test_memory_constraints(self, macro, heavy_genotype):
        checker = ConstraintChecker(
            HardwareConstraints(max_sram_bytes=1, max_flash_bytes=1),
            macro_config=macro,
        )
        violations = checker.violations(heavy_genotype)
        assert "sram" in violations and "flash" in violations

    def test_total_violation_sums(self, macro, heavy_genotype):
        flops = count_flops(heavy_genotype, macro)
        params = count_params(heavy_genotype, macro)
        checker = ConstraintChecker(
            HardwareConstraints(max_flops=flops / 2, max_params=params / 4),
            macro_config=macro,
        )
        assert checker.total_violation(heavy_genotype) == pytest.approx(1.0 + 3.0)

    def test_relative_overshoot_unit_free(self, macro, heavy_genotype):
        # Same relative bound in different units -> same violation value.
        flops = count_flops(heavy_genotype, macro)
        params = count_params(heavy_genotype, macro)
        checker = ConstraintChecker(
            HardwareConstraints(max_flops=flops / 2, max_params=params / 2),
            macro_config=macro,
        )
        v = checker.violations(heavy_genotype)
        assert v["flops"] == pytest.approx(v["params"])
