"""Random-search and evolutionary baselines."""

import pytest

from repro.benchdata.surrogate import SurrogateModel
from repro.errors import SearchError
from repro.search.constraints import HardwareConstraints
from repro.search.evolutionary import ConstrainedEvolutionarySearch, EvolutionConfig
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.search.random_search import ZeroShotRandomSearch
from repro.searchspace.network import MacroConfig


class TestRandomSearch:
    @pytest.fixture()
    def objective(self, tiny_proxy_config, shared_latency_estimator):
        return HybridObjective(
            proxy_config=tiny_proxy_config,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=shared_latency_estimator,
        )

    def test_returns_result_with_cost(self, objective):
        result = ZeroShotRandomSearch(objective, num_samples=6, seed=0).search()
        assert result.algorithm == "random-zeroshot"
        assert result.ledger.counts["random_candidates"] == 6
        assert result.wall_seconds > 0

    def test_deterministic(self, objective, tiny_proxy_config,
                           shared_latency_estimator):
        a = ZeroShotRandomSearch(objective, num_samples=5, seed=3).search().genotype
        fresh = HybridObjective(proxy_config=tiny_proxy_config,
                                weights=ObjectiveWeights(latency=0.5),
                                latency_estimator=shared_latency_estimator)
        b = ZeroShotRandomSearch(fresh, num_samples=5, seed=3).search().genotype
        assert a == b

    def test_invalid_sample_count(self, objective):
        with pytest.raises(SearchError):
            ZeroShotRandomSearch(objective, num_samples=0)

    def test_constraint_filtering(self, objective, shared_latency_estimator):
        constraints = HardwareConstraints(max_latency_ms=500.0)
        result = ZeroShotRandomSearch(objective, num_samples=8, seed=1).search(
            constraints=constraints
        )
        latency = shared_latency_estimator.estimate_ms(result.genotype)
        # Either feasible, or everything sampled was infeasible and the
        # least-violating genotype was returned.
        assert latency < 500.0 or result.history[0]["num_samples"] == 1


class TestEvolutionarySearch:
    def test_finds_good_architecture(self):
        search = ConstrainedEvolutionarySearch(
            EvolutionConfig(population_size=20, sample_size=5, cycles=150),
            seed=0,
        )
        result = search.search()
        acc = SurrogateModel().accuracy(result.genotype, "cifar10")
        assert acc > 90.0  # unconstrained evolution should find strong cells

    def test_charges_training_time(self):
        search = ConstrainedEvolutionarySearch(
            EvolutionConfig(population_size=10, sample_size=3, cycles=20), seed=0
        )
        result = search.search()
        evaluations = 10 + 20
        assert result.ledger.counts["simulated_training"] == evaluations
        assert result.simulated_gpu_seconds > 0
        assert result.search_gpu_hours > result.wall_seconds / 3600.0

    def test_deterministic(self):
        cfg = EvolutionConfig(population_size=10, sample_size=3, cycles=30)
        a = ConstrainedEvolutionarySearch(cfg, seed=7).search().genotype
        b = ConstrainedEvolutionarySearch(cfg, seed=7).search().genotype
        assert a == b

    def test_constraints_respected(self):
        constraints = HardwareConstraints(max_params=0.5e6)
        search = ConstrainedEvolutionarySearch(
            EvolutionConfig(population_size=20, sample_size=5, cycles=150),
            constraints=constraints,
            seed=0,
        )
        result = search.search()
        from repro.proxies.flops import count_params
        assert count_params(result.genotype, MacroConfig.full()) <= 0.5e6

    def test_constrained_accuracy_lower_than_unconstrained(self):
        cfg = EvolutionConfig(population_size=20, sample_size=5, cycles=150)
        free = ConstrainedEvolutionarySearch(cfg, seed=0).search()
        tight = ConstrainedEvolutionarySearch(
            cfg, constraints=HardwareConstraints(max_params=0.2e6), seed=0
        ).search()
        sur = SurrogateModel()
        assert sur.accuracy(tight.genotype) <= sur.accuracy(free.genotype)

    def test_invalid_config_rejected(self):
        with pytest.raises(SearchError):
            ConstrainedEvolutionarySearch(EvolutionConfig(population_size=1))

    def test_reduced_epochs_cheaper(self):
        full = ConstrainedEvolutionarySearch(
            EvolutionConfig(population_size=5, sample_size=2, cycles=5), seed=0
        ).search()
        cheap = ConstrainedEvolutionarySearch(
            EvolutionConfig(population_size=5, sample_size=2, cycles=5,
                            reduced_epochs=20),
            seed=0,
        ).search()
        assert cheap.simulated_gpu_seconds < full.simulated_gpu_seconds


class TestSearchResult:
    def test_summary_format(self):
        from repro.search.result import SearchResult
        from repro.searchspace.genotype import Genotype
        result = SearchResult(genotype=Genotype(("none",) * 6), algorithm="x")
        assert "x:" in result.summary()
        assert result.search_gpu_hours == 0.0
