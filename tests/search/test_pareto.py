"""Multi-objective Pareto zero-shot search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.proxies.base import ProxyConfig
from repro.search import HybridObjective, ObjectiveWeights
from repro.search.pareto import (
    ParetoPoint,
    ParetoZeroShotSearch,
    crowding_distance,
    dominates,
    non_dominated_sort,
)
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig

FAST_PROXY = ProxyConfig(init_channels=4, cells_per_stage=1, input_size=8,
                         ntk_batch_size=8, lr_num_samples=32, lr_input_size=4,
                         lr_channels=2, seed=9)

objective_vectors = st.lists(
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
    min_size=2, max_size=30,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])
        assert dominates([1, 2], [1, 3])

    def test_no_self_domination(self):
        assert not dominates([1, 2], [1, 2])

    def test_incomparable(self):
        assert not dominates([1, 3], [2, 2])
        assert not dominates([2, 2], [1, 3])

    def test_length_mismatch(self):
        with pytest.raises(SearchError):
            dominates([1], [1, 2])


class TestNonDominatedSort:
    def test_simple_fronts(self):
        points = np.array([[1, 1], [2, 2], [1, 3], [3, 3]])
        fronts = non_dominated_sort(points)
        assert fronts[0] == [0]          # (1,1) dominates everything
        assert set(fronts[1]) == {1, 2}  # (2,2) and (1,3) incomparable
        assert fronts[2] == [3]

    def test_all_equal_points_one_front(self):
        points = np.array([[1.0, 1.0]] * 5)
        fronts = non_dominated_sort(points)
        assert len(fronts) == 1
        assert sorted(fronts[0]) == list(range(5))

    @settings(max_examples=50, deadline=None)
    @given(vectors=objective_vectors)
    def test_fronts_partition_population(self, vectors):
        points = np.array(vectors)
        fronts = non_dominated_sort(points)
        flat = sorted(i for front in fronts for i in front)
        assert flat == list(range(len(points)))

    @settings(max_examples=50, deadline=None)
    @given(vectors=objective_vectors)
    def test_first_front_mutually_non_dominated(self, vectors):
        points = np.array(vectors)
        first = non_dominated_sort(points)[0]
        for i in first:
            for j in first:
                assert not dominates(points[i], points[j])

    @settings(max_examples=50, deadline=None)
    @given(vectors=objective_vectors)
    def test_nothing_dominates_first_front(self, vectors):
        points = np.array(vectors)
        first = set(non_dominated_sort(points)[0])
        for i in range(len(points)):
            for j in first:
                assert not dominates(points[i], points[j])


class TestCrowdingDistance:
    def test_extremes_infinite(self):
        points = np.array([[0, 10], [5, 5], [10, 0]])
        distance = crowding_distance(points)
        assert np.isinf(distance[0])
        assert np.isinf(distance[2])
        assert np.isfinite(distance[1])

    def test_small_fronts_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1, 2]]))))
        assert np.all(np.isinf(crowding_distance(np.array([[1, 2], [2, 1]]))))

    def test_denser_point_smaller_distance(self):
        # Point 1 sits between near neighbours (0,10) and (1.2,8.8);
        # point 2's neighbourhood spans all the way to (10,0).
        points = np.array([[0, 10.0], [1, 9.0], [1.2, 8.8], [10, 0.0]])
        distance = crowding_distance(points)
        assert distance[1] < distance[2]

    def test_degenerate_axis_no_nan(self):
        points = np.array([[1.0, 0], [1.0, 5], [1.0, 10]])
        distance = crowding_distance(points)
        assert not np.any(np.isnan(distance))


class TestParetoSearch:
    @pytest.fixture(scope="class")
    def result(self, shared_latency_estimator):
        objective = HybridObjective(
            proxy_config=FAST_PROXY,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=shared_latency_estimator,
        )
        return ParetoZeroShotSearch(objective, num_samples=16, seed=2).search()

    def test_front_non_empty_and_sorted(self, result):
        assert result.front
        latencies = [p.latency_ms for p in result.front]
        assert latencies == sorted(latencies)

    def test_front_mutually_non_dominated(self, result):
        for a in result.front:
            for b in result.front:
                assert not dominates(a.objectives(False), b.objectives(False))

    def test_quality_decreases_along_front(self, result):
        """Sorted by latency, quality rank must be non-increasing-better:
        each slower point must buy strictly better (lower) quality."""
        qualities = [p.quality_rank for p in result.front]
        assert qualities == sorted(qualities, reverse=True)

    def test_named_picks(self, result):
        assert result.fastest().latency_ms == result.front[0].latency_ms
        assert result.best_quality().quality_rank == min(
            p.quality_rank for p in result.front)
        knee = result.knee_point()
        assert knee in result.front

    def test_bookkeeping(self, result):
        assert result.population_size == 16
        assert result.num_fronts >= 1
        assert result.wall_seconds > 0

    def test_rejects_tiny_population(self, shared_latency_estimator):
        objective = HybridObjective(proxy_config=FAST_PROXY,
                                    latency_estimator=shared_latency_estimator)
        with pytest.raises(SearchError):
            ParetoZeroShotSearch(objective, num_samples=1)

    def test_knee_point_of_empty_front(self):
        from repro.search.pareto import ParetoResult
        with pytest.raises(SearchError):
            ParetoResult(front=[], population_size=0, wall_seconds=0,
                         num_fronts=0).knee_point()

    def test_flops_objective_supported(self, shared_latency_estimator):
        objective = HybridObjective(
            proxy_config=FAST_PROXY,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=shared_latency_estimator,
        )
        result = ParetoZeroShotSearch(objective, num_samples=10, seed=4,
                                      include_flops=True).search()
        assert result.front
        for a in result.front:
            for b in result.front:
                assert not dominates(a.objectives(True), b.objectives(True))


class _ZeroLatencyEstimator:
    """Estimator reporting a genuine 0.0 ms for everything, with a call
    counter: the sentinel regression below keys on *calls*, not values."""

    precision = "float32"

    def __init__(self, config):
        from repro.engine.cache import IndicatorCache
        from repro.hardware.device import NUCLEO_F746ZG

        self.config = config
        self.device = NUCLEO_F746ZG
        self.cache = IndicatorCache()
        self.profiler = None
        self.calls = 0

    def estimate_ms(self, genotype):
        self.calls += 1
        return 0.0


class TestZeroLatencyRegression:
    """A genuine 0.0 ms estimate from a latency-weighted objective must be
    kept as-is — the old ``latency == 0.0`` sentinel silently re-estimated
    such rows on every scoring pass."""

    def test_zero_latency_rows_not_reestimated(self):
        estimator = _ZeroLatencyEstimator(
            MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                        input_channels=3, image_size=8))
        objective = HybridObjective(
            proxy_config=FAST_PROXY,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=estimator,
        )
        search = ParetoZeroShotSearch(objective, num_samples=8, seed=3)
        from repro.searchspace import NasBench201Space

        genotypes = NasBench201Space().sample(8, rng=3)
        points = search._score_population(genotypes)
        assert all(p.latency_ms == 0.0 for p in points)
        calls_after_rows = estimator.calls
        assert calls_after_rows > 0
        # Scoring again resolves every row from the cache: the fixed code
        # must not fall back to the estimator just because latency is 0.0.
        search._score_population(genotypes)
        assert estimator.calls == calls_after_rows

    def test_zero_latency_front_still_builds(self):
        estimator = _ZeroLatencyEstimator(
            MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                        input_channels=3, image_size=8))
        objective = HybridObjective(
            proxy_config=FAST_PROXY,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=estimator,
        )
        result = ParetoZeroShotSearch(objective, num_samples=8,
                                      seed=3).search()
        assert result.front
        assert all(p.latency_ms == 0.0 for p in result.front)


class TestExtraCostAxes:
    def test_energy_axis_front(self, shared_latency_estimator):
        objective = HybridObjective(
            proxy_config=FAST_PROXY,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=shared_latency_estimator,
        )
        result = ParetoZeroShotSearch(
            objective, num_samples=10, seed=5,
            objectives=("latency", "energy")).search()
        assert result.axes == ("latency", "energy")
        assert result.front
        for point in result.front:
            assert point.cost("energy") > 0.0
            assert point.cost("latency") == point.latency_ms
        ordering = [p.cost("latency") for p in result.front]
        assert ordering == sorted(ordering)

    def test_missing_axis_rejected(self):
        point = ParetoPoint(genotype=Genotype(("skip_connect",) * 6),
                            quality_rank=1.0, latency_ms=2.0, flops=3.0)
        with pytest.raises(SearchError, match="no cost axis"):
            point.cost("peak-mem")

    def test_duplicate_axes_rejected(self, shared_latency_estimator):
        objective = HybridObjective(
            proxy_config=FAST_PROXY,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=shared_latency_estimator,
        )
        with pytest.raises(SearchError):
            ParetoZeroShotSearch(objective, num_samples=8,
                                 objectives=("latency", "latency"))
