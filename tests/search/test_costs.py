"""The pluggable cost-model registry and its objective integration."""

import numpy as np
import pytest

from repro.engine.core import Engine
from repro.errors import SearchError
from repro.hardware.device import NUCLEO_F746ZG, NUCLEO_L432KC
from repro.search.costs import (
    DEPLOY_PRECISIONS,
    DeployPrecision,
    FLOAT32_DEPLOY,
    INT8_DEPLOY,
    build_cost_model,
    registered_cost_models,
    resolve_deploy_precision,
)
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.searchspace.network import MacroConfig

pytestmark = pytest.mark.hw

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)

BUILTIN_AXES = ("energy", "flops", "int8-latency", "latency", "peak-mem")


@pytest.fixture(scope="module")
def engine(tiny_proxy_config):
    return Engine(proxy_config=tiny_proxy_config, macro_config=TINY,
                  device=NUCLEO_F746ZG)


class TestRegistry:
    def test_builtin_axes_registered(self):
        assert registered_cost_models() == BUILTIN_AXES

    def test_unknown_axis_rejected(self, engine):
        with pytest.raises(SearchError, match="unknown cost model"):
            engine.cost_model("graph-volume")

    def test_engine_memoizes_models(self, engine):
        assert engine.cost_model("energy") is engine.cost_model("energy")

    def test_latency_axis_shares_engine_estimator(self, engine):
        model = engine.cost_model("latency")
        assert model.estimator is engine.latency_estimator
        assert model.cache is engine.cache

    def test_energy_axis_shares_latency_estimator(self, engine):
        assert (engine.cost_model("energy").energy.estimator
                is engine.latency_estimator)

    def test_int8_axis_builds_quantized_estimator(self, engine):
        model = engine.cost_model("int8-latency")
        assert model.estimator.precision == "int8"
        assert model.estimator is not engine.latency_estimator
        # ...but still memoizes into the engine's canonical cache.
        assert model.cache is engine.cache


class TestFingerprints:
    """Cache keys must never alias across devices, precisions or models."""

    def test_latency_key_matches_legacy_layout(self, engine, heavy_genotype):
        from dataclasses import astuple

        from repro.searchspace.canonical import canonicalize

        model = engine.cost_model("latency")
        canon = canonicalize(heavy_genotype)
        key = model.cache_key(canon.to_index())
        assert key == ("latency", canon.to_index(), NUCLEO_F746ZG.name,
                       "float32", astuple(TINY))

    def test_keys_distinct_across_axes(self, engine):
        keys = {engine.cost_model(name).cache_key(0)
                for name in registered_cost_models()}
        assert len(keys) == len(registered_cost_models())

    def test_keys_distinct_across_devices(self, tiny_proxy_config, engine):
        sibling = engine.for_device(NUCLEO_L432KC)
        for name in ("latency", "energy", "int8-latency"):
            assert (engine.cost_model(name).cache_key(0)
                    != sibling.cost_model(name).cache_key(0))

    def test_float32_and_int8_never_alias(self, engine):
        assert (engine.cost_model("latency").cache_key(7)
                != engine.cost_model("int8-latency").cache_key(7))


class TestEngineCost:
    def test_values_positive_and_cached(self, engine, heavy_genotype):
        for name in registered_cost_models():
            first = engine.cost(heavy_genotype, name)
            assert first > 0.0
            assert engine.cost(heavy_genotype, name) == first

    def test_latency_axis_equals_engine_latency(self, engine,
                                                heavy_genotype):
        assert engine.cost(heavy_genotype, "latency") == \
            engine.latency_ms(heavy_genotype)

    def test_flops_axis_equals_engine_flops(self, engine, heavy_genotype):
        assert engine.cost(heavy_genotype, "flops") == \
            engine.flops(heavy_genotype)

    def test_energy_monotone_in_latency(self, engine, heavy_genotype,
                                        light_genotype):
        assert engine.cost(heavy_genotype, "energy") > \
            engine.cost(light_genotype, "energy")
        assert engine.cost(heavy_genotype, "latency") > \
            engine.cost(light_genotype, "latency")

    def test_peak_mem_matches_planner(self, engine, heavy_genotype):
        from repro.hardware.memplan import plan_memory, tensor_lifetimes
        from repro.searchspace.canonical import canonicalize

        canon = canonicalize(heavy_genotype)
        expected = plan_memory(tensor_lifetimes(canon, TINY),
                               "greedy_by_size").arena_bytes
        assert engine.cost(heavy_genotype, "peak-mem") == float(expected)

    def test_build_cost_model_standalone(self, heavy_genotype):
        model = build_cost_model("peak-mem", device=NUCLEO_F746ZG,
                                 macro_config=TINY)
        assert model.estimate(heavy_genotype) > 0


class TestWeightsGeneralization:
    def test_costs_mapping_normalized_sorted(self):
        w = ObjectiveWeights(costs={"peak-mem": 2.0, "energy": 1.0})
        assert w.costs == (("energy", 1.0), ("peak-mem", 2.0))
        assert w == ObjectiveWeights(costs=(("peak-mem", 2.0),
                                            ("energy", 1.0)))

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SearchError, match="shadows a built-in"):
            ObjectiveWeights(costs={"latency": 1.0})

    def test_duplicate_axes_rejected(self):
        with pytest.raises(SearchError, match="duplicate"):
            ObjectiveWeights(costs=(("energy", 1.0), ("energy", 2.0)))

    def test_scaled_hardware_scales_extra_axes(self):
        w = ObjectiveWeights(flops=0.5, latency=0.5,
                             costs={"energy": 1.0, "peak-mem": 0.0})
        scaled = w.scaled_hardware(2.0)
        assert scaled.flops == 1.0 and scaled.latency == 1.0
        assert scaled.cost_weights == {"energy": 2.0}
        # Trainless weights are never part of the hardware family.
        assert scaled.ntk == w.ntk and scaled.linear_regions == w.linear_regions

    def test_uses_costs_ignores_zero_weights(self):
        assert not ObjectiveWeights(costs={"energy": 0.0}).uses_costs
        assert ObjectiveWeights(costs={"energy": 0.1}).uses_costs


class TestObjectiveIntegration:
    @pytest.fixture(scope="class")
    def objective(self, tiny_proxy_config):
        engine = Engine(proxy_config=tiny_proxy_config, macro_config=TINY,
                        device=NUCLEO_F746ZG)
        return HybridObjective(
            weights=ObjectiveWeights(latency=0.5,
                                     costs={"energy": 1.0, "peak-mem": 1.0}),
            engine=engine)

    def test_indicator_rows_carry_cost_axes(self, objective, heavy_genotype):
        row = objective.genotype_indicators(heavy_genotype)
        assert row["energy"] > 0 and row["peak-mem"] > 0
        assert row["latency"] > 0

    def test_population_table_carries_cost_columns(self, objective,
                                                   heavy_genotype,
                                                   light_genotype):
        table = objective.evaluate_population([heavy_genotype,
                                               light_genotype])
        assert table.column("energy").shape == (2,)
        assert table.column("peak-mem").shape == (2,)
        assert np.all(table.column("energy") > 0)

    def test_scores_reflect_extra_axes(self, objective, heavy_genotype,
                                       light_genotype):
        scores = objective.score_genotypes([heavy_genotype, light_genotype])
        assert scores.shape == (2,)
        assert np.all(np.isfinite(scores))

    def test_default_weights_bit_identical_scores(self, tiny_proxy_config,
                                                  heavy_genotype,
                                                  light_genotype,
                                                  disconnected_genotype):
        """costs=() must reproduce the four-field rank combination
        exactly (the refactor's bit-identity guarantee)."""
        from repro.proxies.ranking import combine_ranks
        from repro.search.objective import _DIRECTIONS, _INF_SENTINEL

        engine = Engine(proxy_config=tiny_proxy_config, macro_config=TINY,
                        device=NUCLEO_F746ZG)
        objective = HybridObjective(
            weights=ObjectiveWeights(latency=0.5, flops=0.25), engine=engine)
        population = [heavy_genotype, light_genotype, disconnected_genotype]
        scores = objective.score_genotypes(population)
        rows = objective.evaluate_population(population).rows()
        columns = {}
        for name in ("ntk", "linear_regions", "flops", "latency"):
            raw = np.array([row[name] for row in rows], dtype=float)
            raw[~np.isfinite(raw)] = _INF_SENTINEL
            columns[name] = raw
        legacy = combine_ranks(
            columns, _DIRECTIONS,
            {"ntk": 1.0, "linear_regions": 1.0, "flops": 0.25,
             "latency": 0.5})
        assert scores.tolist() == legacy.tolist()

    def test_supernet_path_rejects_cost_axes(self, objective):
        from repro.searchspace.cell import EdgeSpec
        from repro.searchspace.genotype import NUM_EDGES
        from repro.searchspace.ops import CANDIDATE_OPS

        specs = [EdgeSpec(i, tuple(CANDIDATE_OPS)) for i in range(NUM_EDGES)]
        with pytest.raises(SearchError, match="genotype-level"):
            objective.supernet_indicators(specs)


class TestDeployPrecision:
    def test_entries(self):
        assert DEPLOY_PRECISIONS == {"float32": FLOAT32_DEPLOY,
                                     "int8": INT8_DEPLOY}
        assert resolve_deploy_precision("int8").kernel_precision == "int8"

    def test_unknown_name_rejected(self):
        with pytest.raises(SearchError, match="unknown deploy precision"):
            resolve_deploy_precision("bfloat16")

    def test_invalid_kernel_precision_rejected(self):
        with pytest.raises(SearchError, match="unknown kernel precision"):
            DeployPrecision(name="x", kernel_precision="float16")
