"""SearchResult records and JSON round-trips."""

import pytest

from repro.search.result import SearchResult
from repro.searchspace.genotype import Genotype
from repro.utils.timing import CostLedger


@pytest.fixture()
def result(heavy_genotype):
    ledger = CostLedger()
    ledger.add("ntk_eval", seconds=1.5, count=3)
    return SearchResult(
        genotype=heavy_genotype,
        algorithm="micronas",
        indicators={"ntk": 12.5, "flops": 1e8},
        history=[{"round": 1, "removed": {"0": "none"}}],
        ledger=ledger,
        wall_seconds=2.0,
        simulated_gpu_seconds=100.0,
        weights_used={"ntk": 1.0, "latency": 0.5},
    )


class TestAccounting:
    def test_gpu_hours_sums_wall_and_simulated(self, result):
        assert result.search_gpu_hours == pytest.approx(102.0 / 3600.0)

    def test_num_evaluations(self, result):
        assert result.num_evaluations == 3

    def test_summary_contains_essentials(self, result):
        text = result.summary()
        assert "micronas" in text and "3 evals" in text


class TestSerialisation:
    def test_to_dict_fields(self, result):
        payload = result.to_dict()
        assert payload["arch_index"] == result.genotype.to_index()
        assert payload["indicators"]["ntk"] == 12.5
        assert payload["ledger"]["counts"]["ntk_eval"] == 3

    def test_json_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "result.json")
        result.save_json(path)
        loaded = SearchResult.load_json(path)
        assert loaded.genotype == result.genotype
        assert loaded.algorithm == result.algorithm
        assert loaded.indicators == result.indicators
        assert loaded.wall_seconds == result.wall_seconds
        assert loaded.simulated_gpu_seconds == result.simulated_gpu_seconds
        assert loaded.ledger.counts == result.ledger.counts
        assert loaded.search_gpu_hours == pytest.approx(result.search_gpu_hours)

    def test_roundtrip_of_minimal_result(self, tmp_path):
        minimal = SearchResult(genotype=Genotype(("none",) * 6), algorithm="x")
        path = str(tmp_path / "minimal.json")
        minimal.save_json(path)
        loaded = SearchResult.load_json(path)
        assert loaded.genotype == minimal.genotype
        assert loaded.search_gpu_hours == 0.0
