"""Crowding-distance-weighted parent selection (steady-state evolution)."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.evolutionary import (
    EvolutionConfig,
    SteadyStateEvolutionarySearch,
)
from repro.search.objective import HybridObjective
from repro.search.pareto import crowding_distance, crowding_selection_weights


def _front():
    """A 5-point front: two boundary points, one lonely interior point,
    two tightly clustered interior points."""
    return np.array([
        [0.0, 10.0],   # boundary (inf crowding)
        [1.0, 8.0],    # clustered with the next point
        [1.1, 7.9],    # clustered
        [5.0, 3.0],    # lonely interior point
        [10.0, 0.0],   # boundary (inf crowding)
    ])


def test_weights_are_a_distribution():
    weights = crowding_selection_weights(_front())
    assert weights.shape == (5,)
    assert np.all(weights > 0)
    assert weights.sum() == pytest.approx(1.0)


def test_selection_probabilities_follow_crowding_order():
    """The satellite contract: probability ordering == crowding ordering."""
    points = _front()
    distance = crowding_distance(points)
    weights = crowding_selection_weights(points)
    # Compare every pair: lonelier never gets a smaller probability, and
    # strictly lonelier (among finite distances) gets strictly more.
    for i in range(len(points)):
        for j in range(len(points)):
            if distance[i] > distance[j] or (
                np.isinf(distance[i]) and np.isfinite(distance[j])
            ):
                assert weights[i] > weights[j], (i, j)
            elif distance[i] == distance[j]:
                assert weights[i] == pytest.approx(weights[j])


def test_empirical_frequencies_follow_crowding_order():
    points = _front()
    weights = crowding_selection_weights(points)
    rng = np.random.default_rng(0)
    picks = rng.choice(len(points), size=20_000, p=weights)
    frequencies = np.bincount(picks, minlength=len(points)) / picks.size
    # The lonely interior point (index 3) beats the clustered ones (1, 2);
    # boundary points beat everyone.
    assert frequencies[3] > frequencies[1]
    assert frequencies[3] > frequencies[2]
    assert frequencies[0] > frequencies[3]
    assert frequencies[4] > frequencies[3]
    np.testing.assert_allclose(frequencies, weights, atol=0.02)


def test_degenerate_fronts_fall_back_to_uniform():
    # <= 2 points: every distance is inf.
    np.testing.assert_allclose(
        crowding_selection_weights(np.array([[0.0, 1.0], [1.0, 0.0]])),
        [0.5, 0.5],
    )
    # Coincident points: zero spread on every axis.
    np.testing.assert_allclose(
        crowding_selection_weights(np.full((4, 2), 3.0)),
        np.full(4, 0.25),
    )


def test_infinite_objectives_are_handled():
    """κ = inf candidates can sit on the front via their other axes."""
    points = np.array([
        [np.inf, 0.0],
        [1.0, 5.0],
        [2.0, 4.0],
        [3.0, 1.0],
    ])
    weights = crowding_selection_weights(points)
    assert np.all(np.isfinite(weights))
    assert np.all(weights > 0)
    assert weights.sum() == pytest.approx(1.0)


def test_empty_front_rejected():
    with pytest.raises(SearchError):
        crowding_selection_weights(np.empty((0, 2)))


# ----------------------------------------------------------------------
# Search-loop integration
# ----------------------------------------------------------------------
def _search(parent_selection, seed=0):
    from repro.eval.benchconfig import reduced_proxy_config

    objective = HybridObjective(proxy_config=reduced_proxy_config(seed=0))
    return SteadyStateEvolutionarySearch(
        objective,
        EvolutionConfig(population_size=6, sample_size=2, cycles=8),
        seed=seed,
        parent_selection=parent_selection,
    )


def test_unknown_parent_selection_rejected():
    with pytest.raises(SearchError):
        _search("roulette")


@pytest.mark.parametrize("parent_selection", ["crowding", "uniform"])
def test_steady_state_runs_under_both_selection_modes(parent_selection):
    result = _search(parent_selection).search()
    assert result.genotype is not None
    assert result.algorithm == "evolutionary-steady-state"
    assert "ntk" in result.indicators
