"""Secondary-stage (macro) search over cells-per-stage and channel width."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.hardware.device import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.proxies.flops import count_flops, count_params
from repro.search.constraints import HardwareConstraints
from repro.search.macro import (
    DeploymentPlan,
    MacroCandidate,
    MacroSearchSpace,
    MacroStageSearch,
    device_constraints,
    plan_deployment,
)
from repro.searchspace.network import MacroConfig

SMALL_SPACE = MacroSearchSpace(channel_choices=(4, 8, 16), cell_choices=(1, 2, 3))


@pytest.fixture(scope="module")
def search(heavy_genotype):
    return MacroStageSearch(heavy_genotype, device=NUCLEO_F746ZG, space=SMALL_SPACE)


class TestMacroSearchSpace:
    def test_grid_size(self):
        assert len(SMALL_SPACE) == 9
        assert len(SMALL_SPACE.configs()) == 9

    def test_configs_cover_grid(self):
        seen = {(c.init_channels, c.cells_per_stage) for c in SMALL_SPACE.configs()}
        assert seen == {(c, n) for c in (4, 8, 16) for n in (1, 2, 3)}

    def test_default_grid_includes_nb201_full(self):
        space = MacroSearchSpace()
        assert any(
            c.init_channels == 16 and c.cells_per_stage == 5
            for c in space.configs()
        )

    def test_rejects_empty_grid(self):
        with pytest.raises(SearchError):
            MacroSearchSpace(channel_choices=())

    def test_rejects_nonpositive_choices(self):
        with pytest.raises(SearchError):
            MacroSearchSpace(channel_choices=(0, 8))
        with pytest.raises(SearchError):
            MacroSearchSpace(cell_choices=(0,))

    def test_rejects_indivisible_image_size(self):
        with pytest.raises(SearchError):
            MacroSearchSpace(image_size=30)


class TestEvaluate:
    def test_metrics_match_analytic_counts(self, search, heavy_genotype):
        config = MacroConfig(init_channels=8, cells_per_stage=2)
        cand = search.evaluate(config)
        assert cand.flops == count_flops(heavy_genotype, config)
        assert cand.params == count_params(heavy_genotype, config)
        assert cand.latency_ms > 0
        assert cand.peak_sram_bytes > 0
        assert cand.flash_bytes > cand.params  # weights + code footprint

    def test_latency_monotone_in_width(self, search):
        narrow = search.evaluate(MacroConfig(init_channels=4, cells_per_stage=2))
        wide = search.evaluate(MacroConfig(init_channels=16, cells_per_stage=2))
        assert wide.latency_ms > narrow.latency_ms

    def test_latency_monotone_in_depth(self, search):
        shallow = search.evaluate(MacroConfig(init_channels=8, cells_per_stage=1))
        deep = search.evaluate(MacroConfig(init_channels=8, cells_per_stage=3))
        assert deep.latency_ms > shallow.latency_ms

    def test_capacity_monotone_in_width(self, search):
        narrow = search.evaluate(MacroConfig(init_channels=4, cells_per_stage=2))
        wide = search.evaluate(MacroConfig(init_channels=16, cells_per_stage=2))
        assert wide.capacity > narrow.capacity

    def test_unconstrained_is_feasible(self, search):
        cand = search.evaluate(MacroConfig(init_channels=8, cells_per_stage=2))
        assert cand.feasible
        assert cand.violations == {}

    def test_violations_reported_relative(self, search):
        config = MacroConfig(init_channels=8, cells_per_stage=2)
        base = search.evaluate(config)
        constrained = search.evaluate(
            config, HardwareConstraints(max_latency_ms=base.latency_ms / 2)
        )
        assert constrained.violations["latency"] == pytest.approx(1.0, rel=1e-6)
        assert not constrained.feasible

    def test_cache_returns_consistent_metrics(self, search):
        config = MacroConfig(init_channels=4, cells_per_stage=1)
        first = search.evaluate(config)
        second = search.evaluate(config)
        assert first.latency_ms == second.latency_ms
        assert first.flops == second.flops

    def test_describe_mentions_violations(self, search):
        config = MacroConfig(init_channels=16, cells_per_stage=3)
        cand = search.evaluate(config, HardwareConstraints(max_flops=1.0))
        assert "violates" in cand.describe()
        assert "flops" in cand.describe()


class TestSelect:
    def test_unbounded_budget_selects_largest(self, search):
        plan = search.select(HardwareConstraints())
        assert plan.config.init_channels == 16
        assert plan.config.cells_per_stage == 3
        assert plan.alternatives_considered == len(SMALL_SPACE)

    def test_latency_budget_caps_capacity(self, search):
        widest = search.evaluate(MacroConfig(init_channels=16, cells_per_stage=3))
        budget = widest.latency_ms * 0.5
        plan = search.select(HardwareConstraints(max_latency_ms=budget))
        assert plan.candidate.latency_ms <= budget
        assert plan.candidate.capacity < widest.capacity

    def test_selected_is_max_capacity_feasible(self, search):
        constraints = HardwareConstraints(max_latency_ms=50.0)
        plan = search.select(constraints)
        feasible = [c for c in search.evaluate_all(constraints) if c.feasible]
        assert plan.candidate.capacity == max(c.capacity for c in feasible)

    def test_impossible_budget_raises(self, search):
        with pytest.raises(SearchError, match="no macro skeleton"):
            search.select(HardwareConstraints(max_latency_ms=1e-6))

    def test_plan_to_dict_round_trips_fields(self, search):
        plan = search.select(HardwareConstraints())
        record = plan.to_dict()
        assert record["device"] == NUCLEO_F746ZG.name
        assert record["init_channels"] == plan.config.init_channels
        assert record["latency_ms"] == plan.candidate.latency_ms
        assert record["arch_index"] == plan.genotype.to_index()


class TestParetoFrontier:
    def test_frontier_sorted_and_dominating(self, search):
        frontier = search.pareto_frontier()
        assert frontier
        latencies = [c.latency_ms for c in frontier]
        capacities = [c.capacity for c in frontier]
        assert latencies == sorted(latencies)
        assert capacities == sorted(capacities)

    def test_frontier_points_not_dominated(self, search):
        frontier = search.pareto_frontier()
        everyone = search.evaluate_all()
        for point in frontier:
            dominators = [
                c for c in everyone
                if c.latency_ms <= point.latency_ms and c.capacity > point.capacity
            ]
            assert not dominators

    def test_frontier_contains_fastest(self, search):
        everyone = search.evaluate_all()
        fastest = min(everyone, key=lambda c: c.latency_ms)
        frontier = search.pareto_frontier()
        assert frontier[0].latency_ms == fastest.latency_ms


class TestDeviceConstraints:
    def test_budgets_from_device(self):
        constraints = device_constraints(NUCLEO_F746ZG, max_latency_ms=100.0)
        assert constraints.max_latency_ms == 100.0
        assert constraints.max_sram_bytes == NUCLEO_F746ZG.sram_bytes
        assert constraints.max_flash_bytes == NUCLEO_F746ZG.flash_bytes

    def test_margin_scales_memories(self):
        constraints = device_constraints(NUCLEO_F746ZG, memory_margin=0.5)
        assert constraints.max_sram_bytes == NUCLEO_F746ZG.sram_bytes * 0.5

    def test_invalid_margin_rejected(self):
        with pytest.raises(SearchError):
            device_constraints(NUCLEO_F746ZG, memory_margin=0.0)
        with pytest.raises(SearchError):
            device_constraints(NUCLEO_F746ZG, memory_margin=1.5)


class TestPlanDeployment:
    def test_end_to_end_float32(self, light_genotype):
        plan = plan_deployment(
            light_genotype,
            device=NUCLEO_F746ZG,
            space=SMALL_SPACE,
        )
        assert isinstance(plan, DeploymentPlan)
        assert plan.candidate.peak_sram_bytes <= NUCLEO_F746ZG.sram_bytes
        assert plan.candidate.flash_bytes <= NUCLEO_F746ZG.flash_bytes

    def test_int8_fits_more_than_float32(self, heavy_genotype):
        """int8 halves/quarters footprints, so capacity can only grow."""
        f32 = plan_deployment(heavy_genotype, device=NUCLEO_F411RE,
                              space=SMALL_SPACE, element_bytes=4)
        i8 = plan_deployment(heavy_genotype, device=NUCLEO_F411RE,
                             space=SMALL_SPACE, element_bytes=1)
        assert i8.candidate.capacity >= f32.candidate.capacity

    def test_smaller_device_gets_smaller_plan(self, heavy_genotype):
        big = plan_deployment(heavy_genotype, device=NUCLEO_F746ZG,
                              space=SMALL_SPACE)
        small = plan_deployment(heavy_genotype, device=NUCLEO_F411RE,
                                space=SMALL_SPACE)
        assert small.candidate.capacity <= big.candidate.capacity

    def test_latency_budget_respected(self, light_genotype):
        plan = plan_deployment(
            light_genotype, device=NUCLEO_F746ZG, space=SMALL_SPACE,
            max_latency_ms=30.0,
        )
        assert plan.candidate.latency_ms <= 30.0


class TestCandidateValue:
    def test_capacity_is_log_sum(self):
        cand = MacroCandidate(
            config=MacroConfig(init_channels=8, cells_per_stage=2),
            latency_ms=1.0, flops=1000, params=100,
            peak_sram_bytes=1, flash_bytes=1,
        )
        assert cand.capacity == pytest.approx(np.log(100) + np.log(1000))

    def test_zero_params_capacity_finite(self):
        cand = MacroCandidate(
            config=MacroConfig(init_channels=8, cells_per_stage=2),
            latency_ms=1.0, flops=0, params=0,
            peak_sram_bytes=1, flash_bytes=1,
        )
        assert np.isfinite(cand.capacity)
