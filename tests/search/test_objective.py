"""Hybrid objective: indicators, expected costs, rank combination."""

import numpy as np
import pytest

from repro.proxies.flops import count_flops
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS


@pytest.fixture(scope="module")
def objective(tiny_proxy_config, shared_latency_estimator):
    return HybridObjective(
        proxy_config=tiny_proxy_config,
        weights=ObjectiveWeights(latency=0.5, flops=0.5),
        macro_config=MacroConfig.full(),
        latency_estimator=shared_latency_estimator,
    )


class TestWeights:
    def test_defaults_no_hardware(self):
        w = ObjectiveWeights()
        assert not w.uses_flops and not w.uses_latency

    def test_scaled_hardware(self):
        w = ObjectiveWeights(flops=0.5, latency=0.25).scaled_hardware(2.0)
        assert w.flops == 1.0 and w.latency == 0.5
        assert w.ntk == 1.0  # proxies untouched

    def test_with_weights_shares_estimator_and_ledger(self, objective):
        clone = objective.with_weights(ObjectiveWeights())
        assert clone.built_latency_estimator is objective.built_latency_estimator
        assert clone.built_latency_estimator is not None
        assert clone.ledger is objective.ledger


class TestGenotypeIndicators:
    def test_all_indicators_present(self, objective, heavy_genotype):
        ind = objective.genotype_indicators(heavy_genotype)
        assert set(ind) == {"ntk", "linear_regions", "flops", "latency"}
        assert ind["flops"] == count_flops(heavy_genotype, objective.macro_config)
        assert ind["latency"] > 0

    def test_ledger_records_evaluations(self, tiny_proxy_config,
                                        shared_latency_estimator, heavy_genotype):
        obj = HybridObjective(proxy_config=tiny_proxy_config,
                              latency_estimator=shared_latency_estimator)
        obj.genotype_indicators(heavy_genotype)
        assert obj.ledger.counts.get("ntk_eval") == 1
        assert obj.ledger.counts.get("lr_eval") == 1

    def test_latency_skipped_when_unweighted(self, tiny_proxy_config,
                                             heavy_genotype):
        obj = HybridObjective(proxy_config=tiny_proxy_config)
        ind = obj.genotype_indicators(heavy_genotype)
        assert ind["latency"] == 0.0


class TestExpectedCosts:
    def test_expected_flops_matches_concrete_for_singletons(self, objective,
                                                            heavy_genotype):
        specs = [EdgeSpec(i, (op,)) for i, op in enumerate(heavy_genotype.ops)]
        expected = objective.expected_flops(specs)
        assert expected == pytest.approx(
            count_flops(heavy_genotype, objective.macro_config)
        )

    def test_expected_flops_decreases_when_pruning_conv(self, objective):
        full = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        pruned = [spec.without("nor_conv_3x3") for spec in full]
        assert objective.expected_flops(pruned) < objective.expected_flops(full)

    def test_expected_latency_close_to_concrete_for_singletons(self, objective,
                                                               heavy_genotype):
        specs = [EdgeSpec(i, (op,)) for i, op in enumerate(heavy_genotype.ops)]
        expected = objective.expected_latency_ms(specs)
        concrete = objective.latency_estimator.estimate_ms(heavy_genotype)
        assert abs(expected - concrete) / concrete < 0.02

    def test_expected_latency_decreases_when_pruning_conv(self, objective):
        full = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        pruned = [spec.without("nor_conv_3x3") for spec in full]
        assert objective.expected_latency_ms(pruned) < \
            objective.expected_latency_ms(full)


class TestRankCombination:
    def test_infinite_ntk_ranks_worst(self, objective):
        rows = [
            {"ntk": np.inf, "linear_regions": 10.0, "flops": 1.0, "latency": 1.0},
            {"ntk": 5.0, "linear_regions": 10.0, "flops": 1.0, "latency": 1.0},
        ]
        ranks = objective.combined_ranks(rows)
        assert ranks[1] < ranks[0]

    def test_hardware_weight_changes_winner(self, tiny_proxy_config,
                                            shared_latency_estimator):
        rows = [
            {"ntk": 5.0, "linear_regions": 20.0, "flops": 100.0, "latency": 100.0},
            {"ntk": 6.0, "linear_regions": 18.0, "flops": 1.0, "latency": 1.0},
        ]
        proxy_only = HybridObjective(tiny_proxy_config,
                                     ObjectiveWeights(),
                                     latency_estimator=shared_latency_estimator)
        assert proxy_only.combined_ranks(rows)[0] < \
            proxy_only.combined_ranks(rows)[1]
        hw_heavy = proxy_only.with_weights(
            ObjectiveWeights(flops=3.0, latency=3.0))
        assert hw_heavy.combined_ranks(rows)[1] < hw_heavy.combined_ranks(rows)[0]

    def test_score_genotypes_prefers_connected(self, objective, heavy_genotype,
                                               disconnected_genotype):
        scores = objective.score_genotypes([heavy_genotype, disconnected_genotype])
        assert scores[0] < scores[1]
