"""MicroNAS pruning search (slow-ish: uses the tiny proxy config)."""

import pytest

from repro.search.constraints import ConstraintChecker, HardwareConstraints
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.search.pruning import MicroNASSearch
from repro.search.tenas import TENASSearch
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS
from repro.errors import SearchError


@pytest.fixture()
def objective(tiny_proxy_config, shared_latency_estimator):
    return HybridObjective(
        proxy_config=tiny_proxy_config,
        weights=ObjectiveWeights(latency=0.5),
        macro_config=MacroConfig.full(),
        latency_estimator=shared_latency_estimator,
    )


@pytest.fixture(scope="module")
def micronas_result(tiny_proxy_config, shared_latency_estimator):
    objective = HybridObjective(
        proxy_config=tiny_proxy_config,
        weights=ObjectiveWeights(latency=0.5),
        macro_config=MacroConfig.full(),
        latency_estimator=shared_latency_estimator,
    )
    return MicroNASSearch(objective, seed=0).search()


class TestSearchMechanics:
    def test_returns_concrete_genotype(self, micronas_result):
        assert isinstance(micronas_result.genotype, Genotype)
        assert len(micronas_result.genotype.ops) == 6

    def test_history_records_rounds(self, micronas_result):
        rounds = [h for h in micronas_result.history if "round" in h]
        assert len(rounds) == len(CANDIDATE_OPS) - 1  # 4 pruning rounds
        assert rounds[0]["num_candidates"] == 6 * len(CANDIDATE_OPS)
        assert rounds[-1]["num_candidates"] == 6 * 2

    def test_each_round_removes_one_op_per_edge(self, micronas_result):
        rounds = [h for h in micronas_result.history if "round" in h]
        for h in rounds:
            assert set(h["removed"].keys()) == set(range(6))

    def test_cost_ledger_populated(self, micronas_result):
        assert micronas_result.ledger.counts["pruning_candidates"] == 30 + 24 + 18 + 12
        assert micronas_result.ledger.seconds["ntk_eval"] > 0
        assert micronas_result.wall_seconds > 0

    def test_indicators_reported(self, micronas_result):
        assert "ntk" in micronas_result.indicators
        assert micronas_result.indicators["flops"] > 0

    def test_weights_recorded(self, micronas_result):
        assert micronas_result.weights_used["latency"] == 0.5

    def test_deterministic_given_seed(self, objective):
        a = MicroNASSearch(objective, seed=0).search().genotype
        b = MicroNASSearch(objective.with_weights(objective.weights),
                           seed=0).search().genotype
        assert a == b

    def test_too_few_ops_rejected(self, objective):
        with pytest.raises(SearchError):
            MicroNASSearch(objective, candidate_ops=("none",))

    def test_restricted_op_set(self, tiny_proxy_config):
        obj = HybridObjective(proxy_config=tiny_proxy_config)
        result = MicroNASSearch(
            obj, candidate_ops=("none", "skip_connect", "nor_conv_1x1"), seed=0
        ).search()
        assert set(result.genotype.ops) <= {"none", "skip_connect", "nor_conv_1x1"}


class TestHardwareAwareness:
    def test_latency_weight_reduces_latency(self, tiny_proxy_config,
                                            shared_latency_estimator):
        proxy_only = TENASSearch(proxy_config=tiny_proxy_config, seed=0).search()
        hw = HybridObjective(
            proxy_config=tiny_proxy_config,
            weights=ObjectiveWeights(latency=2.0),
            latency_estimator=shared_latency_estimator,
        )
        hw_result = MicroNASSearch(hw, seed=0).search()
        lat_proxy = shared_latency_estimator.estimate_ms(proxy_only.genotype)
        lat_hw = shared_latency_estimator.estimate_ms(hw_result.genotype)
        assert lat_hw < lat_proxy

    def test_constraint_adaptation_reaches_feasibility(self, tiny_proxy_config,
                                                       shared_latency_estimator):
        # A latency bound the proxy-only result would violate.
        constraints = HardwareConstraints(max_latency_ms=400.0)
        objective = HybridObjective(
            proxy_config=tiny_proxy_config,
            weights=ObjectiveWeights(),  # hardware weights start at zero
            latency_estimator=shared_latency_estimator,
        )
        searcher = MicroNASSearch(objective, seed=0)
        checker = ConstraintChecker(constraints,
                                    latency_estimator=shared_latency_estimator)
        result = searcher.search_with_constraints(constraints, checker=checker,
                                                  max_outer_rounds=3)
        outer = [h for h in result.history if "outer_round" in h]
        assert outer, "outer adaptation history missing"
        assert checker.total_violation(result.genotype) < 0.5  # near-feasible


class TestTENAS:
    def test_tenas_ignores_hardware(self, tiny_proxy_config):
        search = TENASSearch(proxy_config=tiny_proxy_config, seed=0)
        assert search.objective.weights.flops == 0.0
        assert search.objective.weights.latency == 0.0
        assert search.algorithm_name == "tenas"

    def test_tenas_from_existing_objective(self, objective):
        search = TENASSearch(objective=objective)
        assert search.objective.weights.latency == 0.0
