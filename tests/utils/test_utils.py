"""RNG helpers, timing ledger, table formatting."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, new_rng, spawn_rng, stable_seed
from repro.utils.tabulate import format_table
from repro.utils.timing import CostLedger, Timer, format_duration


class TestRng:
    def test_new_rng_from_int_deterministic(self):
        assert new_rng(5).integers(1000) == new_rng(5).integers(1000)

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_spawn_rng_independent_of_order(self):
        parent1, parent2 = np.random.default_rng(1), np.random.default_rng(1)
        a = spawn_rng(parent1, "x").integers(1000)
        b = spawn_rng(parent2, "x").integers(1000)
        assert a == b

    def test_stable_seed_deterministic_across_runs(self):
        # FNV over reprs: stable regardless of PYTHONHASHSEED.
        assert stable_seed("ntk", 0, 123) == stable_seed("ntk", 0, 123)
        assert stable_seed("a") != stable_seed("b")

    def test_stable_seed_in_numpy_range(self):
        assert 0 <= stable_seed("anything", 42) < 2**63

    def test_rng_mixin_lazy_and_reseedable(self):
        class Thing(RngMixin):
            pass

        t = Thing(3)
        first = t.rng.integers(100)
        t.reseed(3)
        assert t.rng.integers(100) == first


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0

    def test_ledger_accumulates(self):
        ledger = CostLedger()
        ledger.add("ntk", seconds=1.0)
        ledger.add("ntk", seconds=2.0, count=3)
        assert ledger.seconds["ntk"] == 3.0
        assert ledger.counts["ntk"] == 4
        assert ledger.total_seconds() == 3.0
        assert ledger.total_count() == 4

    def test_ledger_merge(self):
        a, b = CostLedger(), CostLedger()
        a.add("x", seconds=1.0)
        b.add("x", seconds=2.0)
        b.add("y", count=5)
        merged = a.merged(b)
        assert merged.seconds["x"] == 3.0
        assert merged.counts["y"] == 5
        assert a.seconds["x"] == 1.0  # originals untouched

    @pytest.mark.parametrize("seconds,unit", [
        (5e-7, "us"), (0.005, "ms"), (3.0, "s"), (300.0, "min"), (9000.0, "h"),
    ])
    def test_format_duration_units(self, seconds, unit):
        assert unit in format_duration(seconds)


class TestTabulate:
    def test_basic_alignment(self):
        table = format_table([["a", 1.5], ["bb", 22.0]], headers=["k", "v"])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        table = format_table([[1.23456]], floatfmt=".2f")
        assert "1.23" in table and "1.2345" not in table

    def test_title(self):
        assert format_table([[1]], title="Table I").startswith("Table I")

    def test_empty(self):
        assert format_table([], title="x") == "x"

    def test_non_float_cells_stringified(self):
        assert "None" in format_table([[None]])
