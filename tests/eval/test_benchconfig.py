"""Benchmark-scale configuration."""

import pytest

from repro.eval import benchconfig


class TestScaleSwitch:
    def test_default_is_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert benchconfig.bench_scale() == "reduced"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert benchconfig.bench_scale() == "paper"

    def test_paper_scale_uses_paper_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert benchconfig.search_proxy_config().ntk_batch_size == 32
        assert benchconfig.correlation_proxy_config().ntk_batch_size == 32

    def test_reduced_scale_is_smaller(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        reduced = benchconfig.search_proxy_config()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        paper = benchconfig.search_proxy_config()
        assert reduced.ntk_batch_size < paper.ntk_batch_size
        assert reduced.init_channels < paper.init_channels

    def test_arch_counts(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        reduced = benchconfig.num_correlation_archs()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert benchconfig.num_correlation_archs() > reduced
