"""Experiment records and markdown rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.report import (
    ExperimentRecord,
    agreement_summary,
    render_markdown,
    within_factor,
)


class TestWithinFactor:
    def test_exact_match(self):
        assert within_factor(3.23, 3.23, 1.0)

    def test_band_edges(self):
        assert within_factor(2.0, 1.0, 2.0)
        assert within_factor(0.5, 1.0, 2.0)
        assert not within_factor(2.01, 1.0, 2.0)
        assert not within_factor(0.49, 1.0, 2.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            within_factor(-1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            within_factor(1.0, 0.0, 2.0)

    @given(
        expected=st.floats(min_value=1e-3, max_value=1e6),
        factor=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_symmetric_in_ratio(self, expected, factor):
        """a within factor of b iff b within factor of a."""
        measured = expected * 1.7
        assert (within_factor(measured, expected, factor)
                == within_factor(expected, measured, factor))


class TestExperimentRecord:
    def test_verdicts(self):
        base = dict(experiment_id="T1", artifact="Table I", metric="speedup",
                    measured=3.1)
        assert ExperimentRecord(agrees=True, **base).verdict() == "yes"
        assert ExperimentRecord(agrees=False, **base).verdict() == "NO"
        assert ExperimentRecord(**base).verdict() == "n/a"

    def test_markdown_row_shape(self):
        record = ExperimentRecord(
            experiment_id="C1", artifact="1104x claim", metric="ratio",
            measured=980.0, paper=1104.0, agrees=True,
        )
        row = record.markdown_row()
        assert row.startswith("| C1 |")
        assert row.count("|") == 8
        assert "980" in row and "1.1e+03" in row or "1104" in row

    def test_missing_paper_value_rendered_as_dash(self):
        record = ExperimentRecord(
            experiment_id="C3", artifact="latency vs flops guided",
            metric="acc delta", measured=0.4,
        )
        assert "—" in record.markdown_row()

    def test_unit_appended(self):
        record = ExperimentRecord(
            experiment_id="T1", artifact="row", metric="latency",
            measured=42.0, unit="ms",
        )
        assert "42 ms" in record.markdown_row()


class TestRenderMarkdown:
    RECORDS = [
        ExperimentRecord("T1", "Table I", "ACC", measured=93.9, paper=93.88,
                         unit="%", agrees=True),
        ExperimentRecord("F2b", "Fig. 2b", "optimal batch", measured=16,
                         paper=32, agrees=True),
        ExperimentRecord("C3", "claim", "L beats F", measured=1.0),
    ]

    def test_contains_header_and_all_rows(self):
        text = render_markdown(self.RECORDS, title="Results")
        assert text.startswith("## Results")
        assert "| id |" in text
        for record in self.RECORDS:
            assert record.experiment_id in text

    def test_no_title(self):
        text = render_markdown(self.RECORDS)
        assert text.startswith("| id |")

    def test_agreement_summary(self):
        assert agreement_summary(self.RECORDS) == (
            "2/2 checked shapes hold (1 qualitative rows)"
        )

    def test_agreement_summary_empty(self):
        assert agreement_summary([]) == "no checked shapes"

    def test_agreement_summary_counts_failures(self):
        records = [
            ExperimentRecord("X", "a", "m", measured=1.0, agrees=False),
            ExperimentRecord("Y", "b", "m", measured=1.0, agrees=True),
        ]
        assert agreement_summary(records).startswith("1/2")
