"""Rank correlations: cross-checks and edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.correlation import (
    kendall_tau,
    kendall_tau_naive,
    pearson,
    spearman_rho,
)

float_lists = st.lists(
    st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=40, unique=True
)


class TestKendall:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_known_value(self):
        # One discordant pair out of three: tau = (2-1)/3.
        assert kendall_tau([1, 2, 3], [1, 3, 2]) == pytest.approx(1 / 3)

    def test_constant_input_returns_zero(self):
        assert kendall_tau([1.0, 1.0, 1.0], [1, 2, 3]) == 0.0

    @given(float_lists)
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_reference(self, xs):
        rng = np.random.default_rng(0)
        ys = list(rng.permutation(xs))
        assert kendall_tau(xs, ys) == pytest.approx(kendall_tau_naive(xs, ys))

    @given(float_lists)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_bounds(self, xs):
        ys = xs[::-1]
        tau = kendall_tau(xs, ys)
        assert -1.0 <= tau <= 1.0
        assert tau == pytest.approx(kendall_tau(ys, xs))


class TestSpearmanPearson:
    def test_spearman_monotone_transform_invariant(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [np.exp(v) for v in x]
        assert spearman_rho(x, y) == pytest.approx(1.0)

    def test_pearson_linear(self):
        x = [1.0, 2.0, 3.0]
        assert pearson(x, [2.0 * v + 1 for v in x]) == pytest.approx(1.0)

    def test_pearson_constant_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1, 2, 3]) == 0.0


class TestValidation:
    @pytest.mark.parametrize("fn", [kendall_tau, spearman_rho, pearson])
    def test_length_mismatch(self, fn):
        with pytest.raises(ReproError):
            fn([1, 2], [1, 2, 3])

    @pytest.mark.parametrize("fn", [kendall_tau, spearman_rho, pearson])
    def test_too_short(self, fn):
        with pytest.raises(ReproError):
            fn([1], [1])

    def test_2d_rejected(self):
        with pytest.raises(ReproError):
            kendall_tau(np.zeros((2, 2)), np.zeros((2, 2)))
