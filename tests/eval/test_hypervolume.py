"""2-D hypervolume indicator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.hypervolume import (
    front_hypervolume,
    hypervolume_2d,
    hypervolume_ratio,
)

points_strategy = st.lists(
    st.tuples(st.floats(0.0, 9.0), st.floats(0.0, 9.0)),
    min_size=1, max_size=20,
)


class TestHypervolume2D:
    def test_single_point(self):
        assert hypervolume_2d([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_two_point_staircase(self):
        # (1,2) and (2,1) against ref (3,3): 2 + 2 - overlap 1 = 3.
        assert hypervolume_2d([(1, 2), (2, 1)], (3, 3)) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d([(1, 1)], (3, 3))
        with_dominated = hypervolume_2d([(1, 1), (2, 2)], (3, 3))
        assert with_dominated == pytest.approx(base)

    def test_point_beyond_reference_ignored(self):
        assert hypervolume_2d([(4, 4)], (3, 3)) == 0.0
        assert hypervolume_2d([(1, 5)], (3, 3)) == 0.0

    def test_order_invariant(self):
        points = [(2, 1), (1, 2), (0.5, 2.5)]
        ref = (4, 4)
        assert (hypervolume_2d(points, ref)
                == pytest.approx(hypervolume_2d(list(reversed(points)), ref)))

    @settings(max_examples=60, deadline=None)
    @given(points=points_strategy)
    def test_monotone_in_points(self, points):
        """Adding a point can never shrink the dominated area."""
        ref = (10.0, 10.0)
        for k in range(1, len(points) + 1):
            assert (hypervolume_2d(points[:k], ref)
                    >= hypervolume_2d(points[:k - 1], ref) - 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(points=points_strategy)
    def test_bounded_by_box(self, points):
        # Summing staircase slabs can overshoot the exact box area by an
        # ulp (e.g. points (0, 1.02) and (ε, 0) give 89.80000000000001 +
        # 10.2), so the upper bound gets the same float slack the
        # monotonicity property above uses.
        ref = (10.0, 10.0)
        assert 0.0 <= hypervolume_2d(points, ref) <= 100.0 + 1e-9


class TestHypervolumeRatio:
    def test_ideal_corner_is_one(self):
        assert hypervolume_ratio([(0, 0)], (2, 2), (0, 0)) == pytest.approx(1.0)

    def test_empty_contribution_is_zero(self):
        assert hypervolume_ratio([(3, 3)], (2, 2), (0, 0)) == 0.0

    def test_invalid_ideal(self):
        with pytest.raises(ReproError):
            hypervolume_ratio([(1, 1)], (2, 2), (2, 2))


class TestFrontHypervolume:
    def test_default_reference(self):
        value = front_hypervolume([100, 200], [5.0, 2.0])
        assert value > 0

    def test_better_front_larger_volume(self):
        ref = (300.0, 10.0)
        worse = front_hypervolume([100, 200], [6.0, 4.0], reference=ref)
        better = front_hypervolume([100, 200], [5.0, 2.0], reference=ref)
        assert better > worse

    def test_validation(self):
        with pytest.raises(ReproError):
            front_hypervolume([1.0], [1.0, 2.0])
        with pytest.raises(ReproError):
            front_hypervolume([], [])

    def test_on_pareto_result_axes(self):
        """Integrates with the ParetoResult field layout."""
        from repro.search.pareto import ParetoPoint
        from repro.searchspace.genotype import Genotype

        front = [
            ParetoPoint(Genotype(("skip_connect",) * 6), quality_rank=8.0,
                        latency_ms=50.0, flops=1.0),
            ParetoPoint(Genotype(("nor_conv_3x3",) * 6), quality_rank=2.0,
                        latency_ms=200.0, flops=9.0),
        ]
        value = front_hypervolume(
            [p.latency_ms for p in front],
            [p.quality_rank for p in front],
        )
        assert value > 0
