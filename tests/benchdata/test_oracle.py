"""Oracle frontier tables."""

import numpy as np
import pytest

from repro.benchdata.oracle import OracleTable, build_oracle_table
from repro.errors import BenchmarkDataError
from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.canonical import is_canonical
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)


@pytest.fixture(scope="module")
def table():
    estimator = LatencyEstimator(NUCLEO_F746ZG, config=TINY)
    return build_oracle_table(estimator, limit=400)


class TestBuild:
    def test_entries_are_canonical_and_unique(self, table):
        assert len(table) == 400
        assert len(set(table.indices.tolist())) == 400
        for index in table.indices[:40]:
            assert is_canonical(Genotype.from_index(int(index)))

    def test_arrays_aligned(self, table):
        assert table.latencies_ms.shape == table.accuracies.shape
        assert (table.latencies_ms > 0).all()
        assert (table.accuracies > 0).all()


class TestQueries:
    def test_best_under_latency_is_feasible_max(self, table):
        budget = float(np.median(table.latencies_ms))
        genotype, acc = table.best_under_latency(budget)
        feasible = table.latencies_ms <= budget
        assert acc == pytest.approx(table.accuracies[feasible].max())
        assert genotype.to_index() in set(table.indices.tolist())

    def test_impossible_budget(self, table):
        with pytest.raises(BenchmarkDataError, match="no architecture"):
            table.best_under_latency(table.latencies_ms.min() / 2)

    def test_larger_budget_never_worse(self, table):
        low = table.best_under_latency(float(np.quantile(table.latencies_ms, 0.2)))[1]
        high = table.best_under_latency(float(np.quantile(table.latencies_ms, 0.9)))[1]
        assert high >= low

    def test_regret_of_oracle_pick_is_zero(self, table):
        budget = float(np.median(table.latencies_ms))
        genotype, _ = table.best_under_latency(budget)
        assert table.regret(genotype, budget) == pytest.approx(0.0, abs=1e-9)

    def test_regret_nonnegative_for_feasible(self, table):
        budget = float(np.quantile(table.latencies_ms, 0.8))
        some = Genotype.from_index(int(table.indices[5]))
        assert table.regret(some, budget) >= 0.0


class TestFrontier:
    def test_frontier_monotone(self, table):
        frontier = table.pareto_frontier()
        assert frontier
        latencies = [lat for lat, _ in frontier]
        accuracies = [acc for _, acc in frontier]
        assert latencies == sorted(latencies)
        assert accuracies == sorted(accuracies)

    def test_frontier_ends_at_global_best(self, table):
        frontier = table.pareto_frontier()
        assert frontier[-1][1] == pytest.approx(table.accuracies.max())
