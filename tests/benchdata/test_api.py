"""NAS-Bench-201-style query API."""

import pytest

from repro.benchdata.api import SPACE_SIZE, SurrogateBenchmarkAPI
from repro.errors import BenchmarkDataError
from repro.searchspace.genotype import Genotype


@pytest.fixture(scope="module")
def api():
    return SurrogateBenchmarkAPI(datasets=["cifar10", "cifar100"])


class TestQuery:
    def test_query_by_genotype_index_and_string(self, api, heavy_genotype):
        by_geno = api.query(heavy_genotype)
        by_index = api.query(heavy_genotype.to_index())
        by_str = api.query(heavy_genotype.to_arch_str())
        assert by_geno.index == by_index.index == by_str.index

    def test_record_fields(self, api, heavy_genotype):
        record = api.query(heavy_genotype)
        assert record.flops > 0 and record.params > 0
        assert record.training_seconds > 0
        assert set(record.accuracies) == {"cifar10", "cifar100"}
        assert record.arch_str == heavy_genotype.to_arch_str()

    def test_per_seed_consistent_with_mean(self, api, heavy_genotype):
        record = api.query(heavy_genotype)
        per_seed = [record.per_seed[("cifar10", s)] for s in api.seeds]
        assert abs(sum(per_seed) / len(per_seed) - record.accuracy("cifar10")) < 1e-9

    def test_cache_returns_same_object(self, api, heavy_genotype):
        assert api.query(heavy_genotype) is api.query(heavy_genotype)

    def test_invalid_key_type(self, api):
        with pytest.raises(BenchmarkDataError):
            api.query(3.14)

    def test_missing_dataset_accuracy(self, api, heavy_genotype):
        record = api.query(heavy_genotype)
        with pytest.raises(BenchmarkDataError):
            record.accuracy("imagenet16-120")

    def test_unknown_dataset_at_construction(self):
        with pytest.raises(BenchmarkDataError):
            SurrogateBenchmarkAPI(datasets=["svhn"])


class TestSpaceLevel:
    def test_len_is_space_size(self, api):
        assert len(api) == SPACE_SIZE == 15625

    def test_iter_records_subset(self, api):
        records = list(api.iter_records([0, 1, 2]))
        assert [r.index for r in records] == [0, 1, 2]

    def test_best_architecture_over_subset(self, api):
        indices = list(range(0, 15625, 500))
        best = api.best_architecture("cifar10", indices)
        accs = [api.query(i).accuracy("cifar10") for i in indices]
        assert best.accuracy("cifar10") == max(accs)

    def test_accuracy_shortcut(self, api, heavy_genotype):
        assert api.accuracy(heavy_genotype) == \
            api.query(heavy_genotype).accuracy("cifar10")
