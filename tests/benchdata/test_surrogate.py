"""Surrogate accuracy model: calibration, determinism, structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchdata.surrogate import DIFFICULTY, SurrogateModel, accuracy_of
from repro.errors import BenchmarkDataError
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES
from repro.searchspace.space import NasBench201Space

ops_strategy = st.tuples(*[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)])


@pytest.fixture(scope="module")
def model():
    return SurrogateModel()


class TestDeterminism:
    def test_same_query_same_answer(self, model, heavy_genotype):
        assert model.accuracy(heavy_genotype) == model.accuracy(heavy_genotype)

    def test_seed_changes_answer_slightly(self, model, heavy_genotype):
        a = model.accuracy(heavy_genotype, seed=0)
        b = model.accuracy(heavy_genotype, seed=1)
        assert a != b
        assert abs(a - b) < 3.0  # seeds correlate like real training seeds

    def test_mean_accuracy_averages(self, model, heavy_genotype):
        mean = model.mean_accuracy(heavy_genotype, "cifar10")
        singles = [model.accuracy(heavy_genotype, "cifar10", s) for s in range(3)]
        assert np.isclose(mean, np.mean(singles))


class TestCalibration:
    def test_disconnected_is_random_guess(self, model, disconnected_genotype):
        for dataset, difficulty in DIFFICULTY.items():
            acc = model.accuracy(disconnected_genotype, dataset)
            assert acc < difficulty.guess_accuracy + 2.0

    def test_best_archs_near_published_ceilings(self, model):
        space = NasBench201Space()
        best = {d: 0.0 for d in DIFFICULTY}
        for g in space.sample(400, rng=11):
            for dataset in DIFFICULTY:
                best[dataset] = max(best[dataset], model.accuracy(g, dataset))
        # Published NAS-Bench-201 bests: ~94.4 / ~73.5 / ~47.3.
        assert 91.0 < best["cifar10"] <= 95.5
        assert 68.0 < best["cifar100"] <= 75.5
        assert 42.0 < best["imagenet16-120"] <= 49.0

    def test_dataset_ordering_preserved(self, model, heavy_genotype):
        c10 = model.accuracy(heavy_genotype, "cifar10")
        c100 = model.accuracy(heavy_genotype, "cifar100")
        in16 = model.accuracy(heavy_genotype, "imagenet16-120")
        assert c10 > c100 > in16

    def test_conv_dense_beats_skip_only(self, model, heavy_genotype,
                                        skip_only_genotype):
        assert model.accuracy(heavy_genotype) > model.accuracy(skip_only_genotype)

    def test_datasets_rank_correlate(self, model):
        space = NasBench201Space()
        sample = space.sample(100, rng=5)
        c10 = [model.accuracy(g, "cifar10") for g in sample]
        c100 = [model.accuracy(g, "cifar100") for g in sample]
        from repro.eval import spearman_rho
        assert spearman_rho(c10, c100) > 0.8


class TestValidation:
    def test_unknown_dataset_rejected(self, model, heavy_genotype):
        with pytest.raises(BenchmarkDataError):
            model.accuracy(heavy_genotype, "mnist")

    def test_negative_noise_scale_rejected(self):
        with pytest.raises(BenchmarkDataError):
            SurrogateModel(noise_scale=-1.0)

    def test_noise_scale_zero_removes_seed_spread(self, heavy_genotype):
        model = SurrogateModel(noise_scale=0.0)
        a = model.accuracy(heavy_genotype, seed=0)
        b = model.accuracy(heavy_genotype, seed=1)
        assert a == b

    def test_module_level_helper(self, heavy_genotype):
        assert accuracy_of(heavy_genotype) == SurrogateModel().accuracy(heavy_genotype)


class TestBounds:
    @given(ops_strategy, st.sampled_from(sorted(DIFFICULTY)))
    @settings(max_examples=60, deadline=None)
    def test_accuracy_in_valid_range(self, ops, dataset):
        acc = SurrogateModel().accuracy(Genotype(ops), dataset)
        assert 0.0 < acc <= 100.0

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_quality_in_unit_interval(self, ops):
        q = SurrogateModel().quality(Genotype(ops))
        assert 0.0 <= q <= 1.0
