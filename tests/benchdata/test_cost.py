"""Training-cost model used in the search-efficiency accounting."""

import pytest

from repro.benchdata.cost import TrainingCostModel
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@pytest.fixture(scope="module")
def cost():
    return TrainingCostModel()


class TestScaling:
    def test_flops_monotone(self, cost, heavy_genotype, light_genotype):
        assert cost.training_seconds(heavy_genotype) > \
            cost.training_seconds(light_genotype)

    def test_epochs_linear(self, cost, heavy_genotype):
        full = cost.training_seconds(heavy_genotype, epochs=200)
        half = cost.training_seconds(heavy_genotype, epochs=100)
        assert abs(full - 2 * half) < 1e-9

    def test_gpu_hours_conversion(self, cost, heavy_genotype):
        secs = cost.training_seconds(heavy_genotype)
        assert cost.training_gpu_hours(heavy_genotype) == pytest.approx(secs / 3600)

    def test_calibration_full_training_about_an_hour(self, cost):
        # All-3x3 cell: ~1-2 GPU-hours for 200 epochs (NB201 logs scale).
        hours = cost.training_gpu_hours(Genotype(("nor_conv_3x3",) * 6))
        assert 0.5 < hours < 3.0

    def test_base_cost_floor(self, cost, disconnected_genotype):
        # Even a trivial network pays per-epoch overheads.
        assert cost.training_seconds(disconnected_genotype) >= \
            cost.epochs * cost.base_seconds_per_epoch

    def test_config_affects_cost(self, cost, heavy_genotype):
        small = MacroConfig(init_channels=4, cells_per_stage=1)
        assert cost.training_seconds(heavy_genotype, small) < \
            cost.training_seconds(heavy_genotype, MacroConfig.full())
