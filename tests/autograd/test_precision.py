"""Precision-policy substrate: dtype propagation through the tape.

Covers the tentpole contract of the policy refactor:

* the float64 default is indistinguishable from the historical
  hard-coded behaviour,
* under ``precision("float32")`` every tape node — forward values,
  gradients, parameters, buffers — lives in float32,
* the active policy is thread-local, mirroring the ``no_grad`` flag, so
  async workers can never strip each other's dtype state.
"""

import threading

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.autograd.precision import (
    FLOAT32,
    FLOAT64,
    PrecisionPolicy,
    default_dtype,
    get_precision,
    precision,
    resolve_policy,
)
from repro.errors import ReproError
from repro.nn import init
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d

pytestmark = pytest.mark.precision


# ----------------------------------------------------------------------
# Policy objects
# ----------------------------------------------------------------------
def test_builtin_policies():
    assert FLOAT64.compute_dtype == np.float64
    assert FLOAT64.accumulate_dtype == np.float64
    assert FLOAT32.compute_dtype == np.float32
    # Eigensolves stay in float64 even under the float32 policy.
    assert FLOAT32.accumulate_dtype == np.float64


def test_resolve_policy_names_and_passthrough():
    assert resolve_policy("float32") is FLOAT32
    assert resolve_policy(FLOAT64) is FLOAT64
    custom = PrecisionPolicy("float32", accumulate="float32")
    assert resolve_policy(custom) is custom
    assert custom.accumulate_dtype == np.float32


def test_resolve_policy_rejects_unknown_names():
    with pytest.raises(ReproError):
        resolve_policy("bfloat16")


def test_non_float_policy_rejected():
    with pytest.raises(ReproError):
        PrecisionPolicy("int32")


def test_default_is_float64():
    assert get_precision() is FLOAT64
    assert default_dtype() == np.float64


def test_context_scopes_and_restores():
    with precision("float32") as policy:
        assert policy is FLOAT32
        assert get_precision() is FLOAT32
        with precision("float64"):
            assert get_precision() is FLOAT64
        assert get_precision() is FLOAT32
    assert get_precision() is FLOAT64


def test_context_restores_on_exception():
    with pytest.raises(RuntimeError):
        with precision("float32"):
            raise RuntimeError("boom")
    assert get_precision() is FLOAT64


# ----------------------------------------------------------------------
# Tensor / tape dtype propagation
# ----------------------------------------------------------------------
def test_tensor_default_stays_float64():
    t = Tensor([1.0, 2.0])
    assert t.data.dtype == np.float64


def test_tensor_allocates_in_policy_dtype():
    with precision("float32"):
        t = Tensor([1.0, 2.0])
    assert t.data.dtype == np.float32


def test_float64_input_recast_under_float32_policy():
    array = np.arange(4.0)  # float64
    with precision("float32"):
        assert Tensor(array).data.dtype == np.float32


def test_ops_preserve_float32_through_the_tape():
    with precision("float32"):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = F.relu(a @ b) * 2.0 + 1.0
        assert out.data.dtype == np.float32
        out.sum().backward()
    assert a.grad.dtype == np.float32
    assert b.grad.dtype == np.float32


def test_gradients_accumulate_in_owner_dtype():
    with precision("float32"):
        a = Tensor([1.0, -2.0, 3.0], requires_grad=True)
        out = F.relu(a)
        out.backward(np.ones(3))  # float64 seed cast to the tensor's dtype
    assert a.grad.dtype == np.float32
    np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])


def test_conv_tape_runs_in_float32():
    with precision("float32"):
        conv = Conv2d(2, 3, 3, padding=1, bias=True, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2, 5, 5)),
                   requires_grad=True)
        out = conv(x)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert conv.weight.grad.dtype == np.float32
        assert x.grad.dtype == np.float32


# ----------------------------------------------------------------------
# nn allocation
# ----------------------------------------------------------------------
def test_init_casts_after_drawing_the_float64_stream():
    draw64 = init.kaiming_normal((4, 3), rng=7)
    with precision("float32"):
        draw32 = init.kaiming_normal((4, 3), rng=7)
    assert draw64.dtype == np.float64
    assert draw32.dtype == np.float32
    # Same RNG stream: float32 values are the rounded float64 draws.
    np.testing.assert_array_equal(draw32, draw64.astype(np.float32))


def test_layers_allocate_parameters_and_buffers_in_policy_dtype():
    with precision("float32"):
        conv = Conv2d(3, 4, 3, bias=True, rng=0)
        linear = Linear(8, 2, rng=0)
        bn = BatchNorm2d(4)
    for param in (conv.weight, conv.bias, linear.weight, linear.bias,
                  bn.weight, bn.bias):
        assert param.data.dtype == np.float32
    assert bn.running_mean.dtype == np.float32
    assert bn.running_var.dtype == np.float32


def test_layers_default_to_float64():
    conv = Conv2d(3, 4, 3, rng=0)
    bn = BatchNorm2d(4)
    assert conv.weight.data.dtype == np.float64
    assert bn.running_mean.dtype == np.float64


# ----------------------------------------------------------------------
# Thread isolation (the PR-3 grad-flag pattern, extended to dtype state)
# ----------------------------------------------------------------------
def test_policy_is_thread_local():
    """A float32 scope on one thread must not leak into another."""
    barrier = threading.Barrier(2)
    observed = {}

    def float32_worker():
        with precision("float32"):
            barrier.wait()       # float32 active here...
            barrier.wait()       # ...while the peer samples its state
            observed["f32"] = default_dtype()

    def default_worker():
        barrier.wait()
        observed["peer"] = default_dtype()  # sampled mid-float32-scope
        barrier.wait()

    threads = [threading.Thread(target=float32_worker),
               threading.Thread(target=default_worker)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert observed["f32"] == np.float32
    assert observed["peer"] == np.float64


def test_new_threads_start_at_the_float64_default():
    result = {}
    with precision("float32"):
        t = threading.Thread(
            target=lambda: result.setdefault("dtype", default_dtype()))
        t.start()
        t.join()
    assert result["dtype"] == np.float64


def test_concurrent_scopes_do_not_interfere():
    """Many threads flip policies concurrently; each only sees its own."""
    errors = []

    def worker(name, reps=50):
        try:
            for _ in range(reps):
                with precision(name):
                    if default_dtype() != np.dtype(name):
                        raise AssertionError(f"{name} scope polluted")
                if default_dtype() != np.float64:
                    raise AssertionError("default polluted")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker,
                                args=("float32" if i % 2 else "float64",))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
