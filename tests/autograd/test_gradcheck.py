"""Finite-difference validation of every op's backward pass."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck


def t(shape, seed, shift=0.0):
    return Tensor(np.random.default_rng(seed).normal(size=shape) + shift,
                  requires_grad=True)


@pytest.mark.parametrize("fn,args", [
    (lambda a, b: F.add(a, b), (t((3, 4), 0), t((3, 4), 1))),
    (lambda a, b: F.add(a, b), (t((3, 4), 0), t((4,), 1))),  # broadcast
    (lambda a, b: F.mul(a, b), (t((2, 3), 2), t((2, 3), 3))),
    (lambda a, b: F.mul(a, b), (t((2, 3), 2), t((1, 3), 3))),  # broadcast
    (lambda a, b: F.div(a, b), (t((4,), 4), t((4,), 5, shift=4.0))),
    (lambda a: F.neg(a), (t((5,), 6),)),
    (lambda a: F.power(a, 3.0), (t((4,), 7),)),
    (lambda a: F.exp(a), (t((4,), 8),)),
    (lambda a: F.log(a), (t((4,), 9, shift=5.0),)),
    (lambda a: F.sigmoid(a), (t((6,), 10),)),
    (lambda a: F.tanh(a), (t((6,), 11),)),
    (lambda a, b: F.maximum(a, b), (t((8,), 12), t((8,), 13))),
    (lambda a: F.sum(a), (t((3, 4), 14),)),
    (lambda a: F.sum(a, axis=1), (t((3, 4), 15),)),
    (lambda a: F.sum(a, axis=(0, 2), keepdims=True), (t((2, 3, 4), 16),)),
    (lambda a: F.mean(a, axis=0), (t((3, 4), 17),)),
    (lambda a: F.reshape(a, (6, 2)), (t((3, 4), 18),)),
    (lambda a: F.transpose(a, (1, 0)), (t((3, 4), 19),)),
    (lambda a: F.transpose(a, (2, 0, 1)), (t((2, 3, 4), 20),)),
    (lambda a: F.getitem(a, (slice(1, 3),)), (t((4, 2), 21),)),
    (lambda a, b: F.concatenate([a, b], axis=1), (t((2, 3), 22), t((2, 2), 23))),
    (lambda a, b: F.matmul(a, b), (t((3, 4), 24), t((4, 2), 25))),
    (lambda a, b: F.matmul(a, b), (t((2, 3, 4), 26), t((2, 4, 2), 27))),
    (lambda a: F.pad2d(a, 1), (t((1, 2, 3, 3), 28),)),
    (lambda a: F.avg_pool2d(a, 2), (t((1, 2, 4, 4), 29),)),
    (lambda a: F.avg_pool2d(a, 3, stride=1, padding=1), (t((1, 2, 4, 4), 30),)),
    (lambda a: F.avg_pool2d(a, 2, stride=2, padding=1), (t((1, 2, 5, 5), 31),)),
    (lambda a: F.global_avg_pool2d(a), (t((2, 3, 4, 4), 32),)),
])
def test_op_gradients_match_finite_differences(fn, args):
    assert gradcheck(fn, args, atol=1e-5, rtol=1e-3)


class TestConvGradients:
    def test_conv_wrt_all_inputs(self):
        x = t((2, 3, 6, 6), 40)
        w = t((4, 3, 3, 3), 41)
        b = t((4,), 42)
        assert gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            (x, w, b), atol=1e-5, rtol=1e-3,
        )

    def test_conv_stride2(self):
        x = t((1, 2, 6, 6), 43)
        w = t((3, 2, 3, 3), 44)
        assert gradcheck(
            lambda x, w: F.conv2d(x, w, stride=2, padding=1),
            (x, w), atol=1e-5, rtol=1e-3,
        )

    def test_conv_1x1(self):
        x = t((2, 3, 4, 4), 45)
        w = t((5, 3, 1, 1), 46)
        assert gradcheck(lambda x, w: F.conv2d(x, w), (x, w),
                         atol=1e-5, rtol=1e-3)

    def test_relu_gradient_masks_negative(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        F.relu(x).backward()
        assert np.allclose(x.grad, [0.0, 1.0])


class TestGradcheckHarness:
    def test_detects_wrong_gradient(self):
        # A deliberately broken "op": forward x^2 but gradient of x.
        def broken(x):
            out = Tensor(x.data**2)

            def backward(grad):
                x._accumulate(grad)  # wrong: should be grad * 2x

            return out._attach((x,), backward)

        x = t((3,), 50, shift=2.0)
        with pytest.raises(AssertionError):
            gradcheck(broken, (x,))

    def test_composite_expression(self):
        x = t((3, 3), 51)
        w = t((3, 3), 52)
        assert gradcheck(
            lambda x, w: F.sum(F.relu(F.matmul(x, w)) * 2.0 + x),
            (x, w), atol=1e-4, rtol=1e-3,
        )
