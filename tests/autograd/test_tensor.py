"""Tensor basics: construction, tape plumbing, backward mechanics."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.errors import AutogradError, ShapeError


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_from_numpy_shares_memory(self):
        arr = np.zeros((2, 2))
        t = Tensor.from_numpy(arr)
        arr[0, 0] = 5.0
        assert t.data[0, 0] == 5.0

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert float(Tensor.ones(2, 2).data.sum()) == 4.0

    def test_item_scalar(self):
        assert Tensor([[3.5]]).item() == 3.5

    def test_item_non_scalar_raises(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_tape(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b.data[0] == 2.0

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x
        y.backward()
        assert np.allclose(x.grad, [5.0])  # 2x + 1 at x=2

    def test_backward_accumulates_across_calls_to_same_leaf(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 3.0
        y.backward()
        first = x.grad.copy()
        y.clear_tape_grads()
        y.backward()
        assert np.allclose(x.grad, first)

    def test_backward_without_grad_flag_raises(self):
        x = Tensor([1.0])
        with pytest.raises(AutogradError):
            x.backward()

    def test_backward_seed_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ShapeError):
            y.backward(np.ones(3))

    def test_diamond_graph_gradient(self):
        # y = a*b + a: gradient wrt a must sum both paths.
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([4.0], requires_grad=True)
        y = a * b + a
        y.backward()
        assert np.allclose(a.grad, [5.0])
        assert np.allclose(b.grad, [3.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        s = x * x
        y = s + s
        y.backward()
        assert np.allclose(x.grad, [8.0])

    def test_custom_seed(self):
        x = Tensor([1.0, 1.0], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 0.0]))
        assert np.allclose(x.grad, [2.0, 0.0])

    def test_clear_tape_grads_zeroes_everything(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        y.backward()
        assert x.grad is not None
        y.clear_tape_grads()
        assert x.grad is None and y.grad is None

    def test_tape_nodes_collects_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0 + x
        nodes = y.tape_nodes()
        assert any(node is x for node in nodes)


class TestNoGrad:
    def test_no_grad_disables_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_requires_grad_flag_ignored_inside_no_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestOperatorSugar:
    def test_add_scalar_broadcast(self):
        t = Tensor([1.0, 2.0]) + 1.0
        assert np.allclose(t.data, [2.0, 3.0])

    def test_radd(self):
        t = 1.0 + Tensor([1.0])
        assert np.allclose(t.data, [2.0])

    def test_sub_rsub(self):
        assert np.allclose((Tensor([3.0]) - 1.0).data, [2.0])
        assert np.allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_div(self):
        assert np.allclose((Tensor([6.0]) / 2.0).data, [3.0])
        assert np.allclose((6.0 / Tensor([2.0])).data, [3.0])

    def test_pow(self):
        assert np.allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0], [2.0]])
        assert np.allclose((a @ b).data, [[1.0], [2.0]])

    def test_getitem(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert np.allclose(t[1:].data, [2.0, 3.0])

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((2, 3)).transpose().shape == (3, 2)

    def test_sum_mean_axes(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum().item() == 6.0
        assert t.mean(axis=0).shape == (3,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)
