"""Training-specific ops: max reduction, softmax family, cross-entropy."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck
from repro.errors import ShapeError


def t(shape, seed):
    return Tensor(np.random.default_rng(seed).normal(size=shape),
                  requires_grad=True)


class TestMaxReduce:
    def test_forward_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert np.allclose(F.max_reduce(Tensor(x), axis=1).data, x.max(axis=1))
        assert np.isclose(F.max_reduce(Tensor(x)).item(), x.max())

    def test_gradient_flows_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        F.max_reduce(x, axis=1).backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_tied_maxima_split_gradient(self):
        x = Tensor(np.array([[3.0, 3.0, 1.0]]), requires_grad=True)
        F.max_reduce(x, axis=1).backward()
        assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_global_max_gradient(self):
        x = Tensor(np.array([1.0, 7.0]), requires_grad=True)
        F.max_reduce(x).backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    @pytest.mark.parametrize("axis,keepdims", [(0, False), (1, True), (None, False)])
    def test_gradcheck(self, axis, keepdims):
        # Distinct values avoid tie-point non-differentiability.
        data = np.random.default_rng(3).permutation(12.0 * np.arange(12)).reshape(3, 4)
        x = Tensor(data, requires_grad=True)
        assert gradcheck(lambda x: F.max_reduce(x, axis=axis, keepdims=keepdims),
                         (x,), atol=1e-5)


class TestSoftmaxFamily:
    def test_log_softmax_normalises(self):
        x = t((4, 6), 1)
        probs = np.exp(F.log_softmax(x, axis=1).data)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_log_softmax_shift_invariant(self):
        x = np.random.default_rng(2).normal(size=(2, 5))
        a = F.log_softmax(Tensor(x), axis=1).data
        b = F.log_softmax(Tensor(x + 1000.0), axis=1).data
        assert np.allclose(a, b, atol=1e-9)

    def test_log_softmax_stable_at_extremes(self):
        x = Tensor(np.array([[1e4, -1e4]]))
        out = F.log_softmax(x, axis=1).data
        assert np.all(np.isfinite(out))

    def test_softmax_matches_exp_log_softmax(self):
        x = t((3, 4), 3)
        assert np.allclose(F.softmax(x).data,
                           np.exp(F.log_softmax(x).data))

    def test_gradchecks(self):
        assert gradcheck(lambda a: F.log_softmax(a, axis=1), (t((3, 5), 4),),
                         atol=1e-5)
        assert gradcheck(lambda a: F.softmax(a, axis=-1), (t((2, 4), 5),),
                         atol=1e-5)


class TestCrossEntropy:
    def test_uniform_logits_log_c(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10.0))

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_gradcheck(self):
        labels = np.array([0, 2, 1, 3])
        assert gradcheck(lambda a: F.cross_entropy(a, labels),
                         (t((4, 5), 6),), atol=1e-5)

    def test_gradient_is_softmax_minus_onehot(self):
        logits = t((2, 3), 7)
        labels = np.array([0, 2])
        loss = F.cross_entropy(logits, labels)
        loss.backward()
        probs = F.softmax(logits.detach(), axis=1).data
        onehot = np.eye(3)[labels]
        assert np.allclose(logits.grad, (probs - onehot) / 2.0, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros(3)), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))
