"""Forward-value checks for every differentiable op."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestElementwise:
    def test_add_broadcasting(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(3,)))
        assert np.allclose(F.add(a, b).data, a.data + b.data)

    def test_mul(self, rng):
        a = Tensor(rng.normal(size=(4,)))
        b = Tensor(rng.normal(size=(4,)))
        assert np.allclose(F.mul(a, b).data, a.data * b.data)

    def test_div(self, rng):
        a = Tensor(rng.normal(size=(4,)) + 5.0)
        b = Tensor(rng.normal(size=(4,)) + 5.0)
        assert np.allclose(F.div(a, b).data, a.data / b.data)

    def test_neg(self):
        assert np.allclose(F.neg(Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_power(self):
        assert np.allclose(F.power(Tensor([2.0]), 3.0).data, [8.0])

    def test_exp_log_roundtrip(self, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        assert np.allclose(F.log(F.exp(Tensor(x))).data, x)

    def test_sqrt(self):
        assert np.allclose(F.sqrt(Tensor([4.0, 9.0])).data, [2.0, 3.0])

    def test_maximum(self):
        out = F.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3.0, 5.0])


class TestActivations:
    def test_relu_clamps_negative(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_midpoint(self):
        out = F.sigmoid(Tensor([0.0, 100.0, -100.0]))
        assert np.allclose(out.data, [0.5, 1.0, 0.0], atol=1e-9)

    def test_tanh_odd_function(self, rng):
        x = rng.normal(size=(6,))
        a = F.tanh(Tensor(x)).data
        b = F.tanh(Tensor(-x)).data
        assert np.allclose(a, -b)


class TestReductionsAndShapes:
    def test_sum_all(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.isclose(F.sum(Tensor(x)).item(), x.sum())

    def test_sum_axis_tuple(self, rng):
        x = rng.normal(size=(2, 3, 4))
        out = F.sum(Tensor(x), axis=(0, 2))
        assert np.allclose(out.data, x.sum(axis=(0, 2)))

    def test_sum_negative_axis(self, rng):
        x = rng.normal(size=(2, 3))
        assert np.allclose(F.sum(Tensor(x), axis=-1).data, x.sum(axis=-1))

    def test_mean_matches_numpy(self, rng):
        x = rng.normal(size=(2, 5))
        assert np.allclose(F.mean(Tensor(x), axis=1).data, x.mean(axis=1))

    def test_reshape(self, rng):
        x = rng.normal(size=(2, 6))
        assert F.reshape(Tensor(x), (3, 4)).shape == (3, 4)

    def test_transpose_axes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        out = F.transpose(Tensor(x), (2, 0, 1))
        assert out.shape == (4, 2, 3)

    def test_concatenate(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        out = F.concatenate([Tensor(a), Tensor(b)], axis=0)
        assert np.allclose(out.data, np.concatenate([a, b], axis=0))

    def test_getitem_fancy(self, rng):
        x = rng.normal(size=(5, 2))
        out = F.getitem(Tensor(x), (slice(1, 4),))
        assert np.allclose(out.data, x[1:4])

    def test_pad2d(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        out = F.pad2d(Tensor(x), 2)
        assert out.shape == (1, 1, 7, 7)
        assert np.allclose(out.data[0, 0, 2:5, 2:5], x[0, 0])

    def test_pad2d_zero_is_identity(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 3)))
        assert F.pad2d(x, 0) is x


class TestMatmul:
    def test_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose(F.matmul(Tensor(a), Tensor(b)).data, a @ b)

    def test_batched(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        assert np.allclose(F.matmul(Tensor(a), Tensor(b)).data, a @ b)


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        assert np.allclose(out.data, x)

    def test_output_shape_stride2(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)

    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        # Direct loop reference at one output location.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = sum(
            (padded[0, c, 1:4, 1:4] * w[1, c]).sum() for c in range(2)
        )
        assert np.isclose(out[0, 1, 1, 1], expected)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 1, 1)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b)
        assert np.allclose(out.data[0, 0], 1.5)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(rng.normal(size=(3, 8, 8))),
                     Tensor(rng.normal(size=(4, 3, 3, 3))))

    def test_rejects_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(rng.normal(size=(1, 2, 8, 8))),
                     Tensor(rng.normal(size=(4, 3, 3, 3))))

    def test_rejects_rectangular_kernel(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(rng.normal(size=(1, 3, 8, 8))),
                     Tensor(rng.normal(size=(4, 3, 1, 3))))


class TestPooling:
    def test_avg_pool_constant_input(self):
        x = Tensor(np.full((1, 1, 4, 4), 3.0))
        out = F.avg_pool2d(x, 2)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out.data, 3.0)

    def test_avg_pool_includes_padding_zeros(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = F.avg_pool2d(x, 3, stride=1, padding=1)
        # Corner window covers 4 ones + 5 padded zeros.
        assert np.isclose(out.data[0, 0, 0, 0], 4.0 / 9.0)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))
