"""Shared fixtures: small, fast configurations used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.proxies.base import ProxyConfig
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_proxy_config() -> ProxyConfig:
    """Smallest proxy setup that still exercises every code path."""
    return ProxyConfig(
        init_channels=4,
        cells_per_stage=1,
        input_size=8,
        num_classes=10,
        ntk_batch_size=8,
        lr_num_samples=32,
        lr_input_size=4,
        lr_channels=2,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_macro_config() -> MacroConfig:
    return MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                       input_channels=3, image_size=8)


@pytest.fixture(scope="session")
def heavy_genotype() -> Genotype:
    """A conv-dense architecture (TE-NAS-like pick)."""
    return Genotype.from_arch_str(
        "|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|"
        "+|skip_connect~0|nor_conv_3x3~1|nor_conv_3x3~2|"
    )


@pytest.fixture(scope="session")
def light_genotype() -> Genotype:
    """A cheap architecture (hardware-friendly pick)."""
    return Genotype.from_arch_str(
        "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
        "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
    )


@pytest.fixture(scope="session")
def disconnected_genotype() -> Genotype:
    return Genotype(("none",) * 6)


@pytest.fixture(scope="session")
def skip_only_genotype() -> Genotype:
    return Genotype(("skip_connect",) * 6)


@pytest.fixture(scope="session")
def shared_latency_estimator() -> LatencyEstimator:
    """One profiled estimator shared by the whole session (profiling once)."""
    return LatencyEstimator(device=NUCLEO_F746ZG)
