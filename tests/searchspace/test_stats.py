"""Search-space redundancy statistics."""

import pytest

from repro.errors import SearchSpaceError
from repro.searchspace.canonical import canonicalize, is_canonical
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space
from repro.searchspace.stats import (
    canonical_census,
    class_of,
    op_histogram,
    space_statistics,
    unique_sample,
)


@pytest.fixture(scope="module")
def census():
    return canonical_census()


@pytest.fixture(scope="module")
def stats():
    return space_statistics()


class TestOpHistogram:
    def test_counts(self, heavy_genotype, light_genotype):
        hist = op_histogram([heavy_genotype, light_genotype])
        assert sum(hist.values()) == 12
        assert hist["nor_conv_3x3"] == 6  # 5 heavy + 1 light

    def test_empty(self):
        assert op_histogram([]) == {}


class TestCensus:
    def test_census_covers_space(self, census):
        assert sum(census.values()) == 15_625

    def test_keys_are_canonical_indices(self, census):
        sample = list(census)[:50]
        for index in sample:
            assert is_canonical(Genotype.from_index(index))

    def test_all_none_class_is_large(self, census):
        """Every fully disconnected string collapses onto all-``none``."""
        all_none = Genotype(("none",) * 6).to_index()
        assert census[all_none] > 100


class TestSpaceStatistics:
    def test_counts_consistent(self, stats):
        assert stats.total_arch_strings == 15_625
        assert 0 < stats.canonical_classes < stats.total_arch_strings
        assert 0.0 < stats.redundancy < 1.0
        assert stats.singleton_classes <= stats.canonical_classes
        assert stats.largest_class_size > 1

    def test_disconnected_subset(self, stats):
        assert 0 < stats.disconnected_arch_strings < stats.total_arch_strings

    def test_known_redundancy_band(self, stats):
        """NB201's functional-uniqueness ratio is well below 1 (literature
        reports ~40 % of strings are functional duplicates)."""
        assert stats.redundancy > 0.2


class TestClassOf:
    def test_canonical_representative(self, census, heavy_genotype):
        canon, size = class_of(heavy_genotype, census)
        assert canon == canonicalize(heavy_genotype)
        assert size >= 1

    def test_disconnected_class(self, census, disconnected_genotype):
        canon, size = class_of(disconnected_genotype, census)
        assert canon == disconnected_genotype
        assert size > 100


class TestUniqueSample:
    def test_pairwise_functionally_distinct(self):
        sample = unique_sample(30, rng=5)
        keys = {g.to_index() for g in sample}
        assert len(keys) == 30
        assert all(is_canonical(g) for g in sample)

    def test_deterministic(self):
        a = unique_sample(10, rng=3)
        b = unique_sample(10, rng=3)
        assert [g.to_index() for g in a] == [g.to_index() for g in b]

    def test_rejects_bad_count(self):
        with pytest.raises(SearchSpaceError):
            unique_sample(0)

    def test_exhaustion_guard(self):
        """A space with one op has exactly one canonical class... plus the
        disconnected one; asking for many unique forms must fail cleanly."""
        tiny = NasBench201Space(ops=("none", "skip_connect"))
        with pytest.raises(SearchSpaceError, match="unique"):
            unique_sample(60, rng=0, space=tiny, max_attempts_factor=2)