"""Macro network construction and forward pass."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.searchspace.cell import Cell, EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import (
    MacroConfig,
    ReductionBlock,
    build_network,
    build_supernet,
)
from repro.searchspace.ops import CANDIDATE_OPS


class TestMacroConfig:
    def test_full_defaults(self):
        cfg = MacroConfig.full()
        assert cfg.init_channels == 16
        assert cfg.cells_per_stage == 5
        assert cfg.stage_channels == (16, 32, 64)
        assert cfg.stage_sizes == (32, 16, 8)

    def test_proxy_is_reduced(self):
        proxy, full = MacroConfig.proxy(), MacroConfig.full()
        assert proxy.init_channels < full.init_channels
        assert proxy.cells_per_stage < full.cells_per_stage
        assert proxy.image_size < full.image_size

    def test_custom_classes(self):
        assert MacroConfig.full(num_classes=100).num_classes == 100


class TestReductionBlock:
    def test_halves_resolution_doubles_channels(self, rng):
        block = ReductionBlock(4, 8, rng=0)
        out = block(Tensor(rng.normal(size=(2, 4, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_has_residual_path(self, rng):
        # Zeroing the main branch's convs must not zero the output.
        block = ReductionBlock(4, 8, rng=0)
        for name, p in block.main.named_parameters():
            if "weight" in name and p.ndim == 4:
                p.data[...] = 0.0
        x = Tensor(rng.normal(size=(1, 4, 8, 8)))
        assert np.abs(block(x).data).max() > 0.0


class TestBuildNetwork:
    def test_forward_shape(self, rng, heavy_genotype, tiny_macro_config):
        net = build_network(heavy_genotype, tiny_macro_config, rng=0)
        out = net(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_cell_count(self, heavy_genotype):
        cfg = MacroConfig(init_channels=4, cells_per_stage=2, image_size=8)
        net = build_network(heavy_genotype, cfg, rng=0)
        assert len(net.cells()) == 6  # 3 stages x 2 cells

    def test_body_structure(self, heavy_genotype, tiny_macro_config):
        net = build_network(heavy_genotype, tiny_macro_config, rng=0)
        kinds = [type(m).__name__ for m in net.body]
        assert kinds == ["Cell", "ReductionBlock", "Cell", "ReductionBlock", "Cell"]

    def test_deterministic_build(self, rng, heavy_genotype, tiny_macro_config):
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        a = build_network(heavy_genotype, tiny_macro_config, rng=3)(x).data
        b = build_network(heavy_genotype, tiny_macro_config, rng=3)(x).data
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, rng, heavy_genotype, tiny_macro_config):
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        a = build_network(heavy_genotype, tiny_macro_config, rng=3)(x).data
        b = build_network(heavy_genotype, tiny_macro_config, rng=4)(x).data
        assert not np.allclose(a, b)

    def test_disconnected_arch_still_classifies(self, rng, disconnected_genotype,
                                                tiny_macro_config):
        # Cells output zero, but stem/reductions/head keep the net defined.
        net = build_network(disconnected_genotype, tiny_macro_config, rng=0)
        out = net(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)
        assert np.all(np.isfinite(out.data))


class TestBuildSupernet:
    def test_forward_shape(self, rng, tiny_macro_config):
        specs = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        net = build_supernet(specs, tiny_macro_config, rng=0)
        assert net(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 10)

    def test_supernet_has_more_params_than_any_child(self, heavy_genotype,
                                                     tiny_macro_config):
        specs = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        supernet = build_supernet(specs, tiny_macro_config, rng=0)
        child = build_network(heavy_genotype, tiny_macro_config, rng=0)
        assert supernet.num_parameters() > child.num_parameters()
