"""Cell and SuperCell forward semantics."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import SearchSpaceError
from repro.searchspace.cell import Cell, EdgeSpec, SuperCell
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS


@pytest.fixture
def x(rng):
    return Tensor(rng.normal(size=(2, 4, 6, 6)))


class TestCell:
    def test_all_skip_cell_is_scaled_identity(self, x):
        # node1 = x; node2 = x + node1 = 2x; node3 = x + node1 + node2 = 4x.
        cell = Cell(Genotype(("skip_connect",) * 6), channels=4)
        assert np.allclose(cell(x).data, 4.0 * x.data)

    def test_all_none_cell_outputs_zeros(self, x):
        cell = Cell(Genotype(("none",) * 6), channels=4)
        assert np.allclose(cell(x).data, 0.0)

    def test_only_direct_edge(self, x):
        ops = ["none"] * 6
        ops[3] = "skip_connect"  # edge 0->3
        cell = Cell(Genotype(tuple(ops)), channels=4)
        assert np.allclose(cell(x).data, x.data)

    def test_shape_preserved(self, x, heavy_genotype):
        assert Cell(heavy_genotype, channels=4, rng=0)(x).shape == x.shape

    def test_deterministic_init(self, x, heavy_genotype):
        a = Cell(heavy_genotype, channels=4, rng=9)(x).data
        b = Cell(heavy_genotype, channels=4, rng=9)(x).data
        assert np.array_equal(a, b)

    def test_gradient_reaches_conv_weights(self, x, heavy_genotype):
        cell = Cell(heavy_genotype, channels=4, rng=0)
        cell(x).sum().backward()
        assert all(p.grad is not None for p in cell.parameters())


class TestEdgeSpec:
    def test_without_removes(self):
        spec = EdgeSpec(0, CANDIDATE_OPS)
        pruned = spec.without("none")
        assert "none" not in pruned.alive_ops
        assert len(pruned.alive_ops) == len(CANDIDATE_OPS) - 1

    def test_without_missing_raises(self):
        with pytest.raises(SearchSpaceError):
            EdgeSpec(0, ("none",)).without("skip_connect")

    def test_decided(self):
        assert EdgeSpec(0, ("none",)).decided
        assert not EdgeSpec(0, CANDIDATE_OPS).decided


class TestSuperCell:
    def test_full_supernet_forward_shape(self, x):
        specs = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        assert SuperCell(specs, channels=4, rng=0)(x).shape == x.shape

    def test_singleton_specs_match_concrete_cell(self, x, heavy_genotype):
        specs = [EdgeSpec(i, (op,)) for i, op in enumerate(heavy_genotype.ops)]
        super_cell = SuperCell(specs, channels=4, rng=11)
        cell = Cell(heavy_genotype, channels=4, rng=11)
        assert np.allclose(super_cell(x).data, cell(x).data)

    def test_edge_averaging(self, x):
        # Edge 0->3 with {skip, none}: expect x/2 at the output via that path.
        specs = [EdgeSpec(i, ("none",)) for i in range(6)]
        specs[3] = EdgeSpec(3, ("skip_connect", "none"))
        out = SuperCell(specs, channels=4, rng=0)(x)
        assert np.allclose(out.data, 0.5 * x.data)

    def test_empty_edge_contributes_nothing(self, x):
        specs = [EdgeSpec(i, ()) for i in range(6)]
        specs[3] = EdgeSpec(3, ("skip_connect",))
        out = SuperCell(specs, channels=4, rng=0)(x)
        assert np.allclose(out.data, x.data)

    def test_wrong_spec_count_rejected(self):
        with pytest.raises(SearchSpaceError):
            SuperCell([EdgeSpec(0, CANDIDATE_OPS)], channels=4)
