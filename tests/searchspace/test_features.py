"""Topology feature extraction, incl. hypothesis invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace.features import cell_graph, effective_paths, extract_features
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

ops_strategy = st.tuples(*[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)])


class TestKnownTopologies:
    def test_all_none_disconnected(self):
        f = extract_features(Genotype(("none",) * 6))
        assert not f.is_connected
        assert f.num_paths == 0
        assert f.max_conv_depth == 0

    def test_all_skip_connected(self):
        f = extract_features(Genotype(("skip_connect",) * 6))
        assert f.is_connected
        assert f.num_paths == 4  # 0->3, 0->1->3, 0->2->3, 0->1->2->3
        assert f.conv_count == 0
        assert f.has_direct_skip

    def test_all_conv3x3(self):
        f = extract_features(Genotype(("nor_conv_3x3",) * 6))
        assert f.max_conv_depth == 3
        assert f.min_conv_depth == 1
        assert f.num_conv3x3 == 6

    def test_single_direct_conv(self):
        ops = ["none"] * 6
        ops[3] = "nor_conv_3x3"  # edge 0->3
        f = extract_features(Genotype(tuple(ops)))
        assert f.is_connected
        assert f.num_paths == 1
        assert f.max_conv_depth == 1 == f.min_conv_depth

    def test_pool_on_all_paths(self):
        ops = ["none"] * 6
        ops[3] = "avg_pool_3x3"
        f = extract_features(Genotype(tuple(ops)))
        assert f.pool_on_all_paths

    def test_pool_not_on_all_paths_with_skip_alternative(self):
        ops = ["none"] * 6
        ops[3] = "avg_pool_3x3"
        ops[0] = "skip_connect"   # 0->1
        ops[4] = "skip_connect"   # 1->3
        f = extract_features(Genotype(tuple(ops)))
        assert not f.pool_on_all_paths

    def test_blocked_path_not_connected(self):
        # Only edge 0->1 alive: node 3 unreachable.
        ops = ["none"] * 6
        ops[0] = "nor_conv_3x3"
        f = extract_features(Genotype(tuple(ops)))
        assert not f.is_connected


class TestGraphHelpers:
    def test_cell_graph_drops_none_edges(self):
        ops = ["none"] * 6
        ops[3] = "skip_connect"
        graph = cell_graph(Genotype(tuple(ops)))
        assert graph.number_of_edges() == 1
        assert graph.has_edge(0, 3)

    def test_effective_paths_op_sequences(self):
        ops = ["none"] * 6
        ops[0] = "nor_conv_1x1"   # 0->1
        ops[4] = "nor_conv_3x3"   # 1->3
        paths = effective_paths(Genotype(tuple(ops)))
        assert paths == [("nor_conv_1x1", "nor_conv_3x3")]


class TestInvariants:
    @given(ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_counts_sum_to_edges(self, ops):
        f = extract_features(Genotype(ops))
        total = (f.num_conv3x3 + f.num_conv1x1 + f.num_skip
                 + f.num_pool + f.num_none)
        assert total == NUM_EDGES
        assert f.effective_edges == NUM_EDGES - f.num_none

    @given(ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_depth_bounds(self, ops):
        f = extract_features(Genotype(ops))
        assert 0 <= f.min_conv_depth <= f.mean_conv_depth <= f.max_conv_depth <= 3
        assert 0 <= f.num_paths <= 4

    @given(ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_connectivity_consistency(self, ops):
        f = extract_features(Genotype(ops))
        assert f.is_connected == (f.num_paths > 0)
        if f.has_direct_skip:
            assert f.is_connected
