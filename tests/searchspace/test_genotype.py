"""Genotype codec: arch strings, indices, mutations — incl. property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GenotypeError
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

ops_strategy = st.tuples(
    *[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)]
)


class TestConstruction:
    def test_valid(self):
        g = Genotype(("none",) * 6)
        assert g.ops == ("none",) * 6

    def test_wrong_length_rejected(self):
        with pytest.raises(GenotypeError):
            Genotype(("none",) * 5)

    def test_unknown_op_rejected(self):
        with pytest.raises(GenotypeError):
            Genotype(("none",) * 5 + ("conv_7x7",))

    def test_frozen_and_hashable(self):
        g = Genotype(("skip_connect",) * 6)
        assert g == Genotype(("skip_connect",) * 6)
        assert hash(g) == hash(Genotype(("skip_connect",) * 6))


class TestArchStringCodec:
    CANONICAL = (
        "|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|"
        "+|skip_connect~0|nor_conv_3x3~1|nor_conv_3x3~2|"
    )

    def test_parse_canonical(self):
        g = Genotype.from_arch_str(self.CANONICAL)
        assert g.op_on_edge(0, 3) == "skip_connect"
        assert g.op_on_edge(2, 3) == "nor_conv_3x3"

    def test_roundtrip_canonical(self):
        g = Genotype.from_arch_str(self.CANONICAL)
        assert g.to_arch_str() == self.CANONICAL

    def test_str_dunder(self):
        g = Genotype(("none",) * 6)
        assert str(g) == g.to_arch_str()

    def test_bad_group_count(self):
        with pytest.raises(GenotypeError):
            Genotype.from_arch_str("|none~0|+|none~0|none~1|")

    def test_bad_edge_count_in_group(self):
        with pytest.raises(GenotypeError):
            Genotype.from_arch_str("|none~0|none~1|+|none~0|none~1|+|none~0|none~1|none~2|")

    def test_malformed_token(self):
        with pytest.raises(GenotypeError):
            Genotype.from_arch_str("|none|+|none~0|none~1|+|none~0|none~1|none~2|")

    def test_unknown_op_in_string(self):
        with pytest.raises(GenotypeError):
            Genotype.from_arch_str(
                "|conv_9x9~0|+|none~0|none~1|+|none~0|none~1|none~2|"
            )

    def test_invalid_source_node(self):
        with pytest.raises(GenotypeError):
            Genotype.from_arch_str(
                "|none~1|+|none~0|none~1|+|none~0|none~1|none~2|"
            )

    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, ops):
        g = Genotype(ops)
        assert Genotype.from_arch_str(g.to_arch_str()) == g


class TestIndexCodec:
    def test_zero_index_is_all_none(self):
        assert Genotype.from_index(0) == Genotype(("none",) * 6)

    def test_max_index(self):
        g = Genotype.from_index(15624)
        assert g == Genotype(("avg_pool_3x3",) * 6)

    def test_out_of_range(self):
        with pytest.raises(GenotypeError):
            Genotype.from_index(15625)
        with pytest.raises(GenotypeError):
            Genotype.from_index(-1)

    def test_bijection_over_sample(self):
        seen = set()
        for idx in range(0, 15625, 97):
            g = Genotype.from_index(idx)
            assert g.to_index() == idx
            seen.add(g.ops)
        assert len(seen) == len(range(0, 15625, 97))

    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, ops):
        g = Genotype(ops)
        assert Genotype.from_index(g.to_index()) == g


class TestManipulation:
    def test_with_op(self):
        g = Genotype(("none",) * 6)
        g2 = g.with_op(3, "skip_connect")
        assert g2.ops[3] == "skip_connect"
        assert g.ops[3] == "none"  # original untouched

    def test_with_op_bad_index(self):
        with pytest.raises(GenotypeError):
            Genotype(("none",) * 6).with_op(6, "none")

    def test_count(self):
        g = Genotype(("none", "none", "skip_connect", "none", "none", "none"))
        assert g.count("none") == 5
        assert g.count("skip_connect") == 1

    def test_op_on_edge_invalid(self):
        with pytest.raises(GenotypeError):
            Genotype(("none",) * 6).op_on_edge(3, 1)

    def test_random_uses_rng(self):
        import numpy as np
        a = Genotype.random(np.random.default_rng(0))
        b = Genotype.random(np.random.default_rng(0))
        assert a == b

    def test_all_genotypes_count_and_order(self):
        gen = Genotype.all_genotypes()
        first = next(gen)
        assert first.to_index() == 0
        assert next(gen).to_index() == 1
