"""Candidate operation semantics and cost formulas."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import SearchSpaceError
from repro.searchspace.ops import (
    CANDIDATE_OPS,
    EDGES,
    build_op,
    op_flops,
    op_is_parametric,
    op_params,
)


@pytest.fixture
def x(rng):
    return Tensor(rng.normal(size=(2, 4, 6, 6)))


class TestBuildOp:
    def test_none_outputs_zeros(self, x):
        out = build_op("none", 4)(x)
        assert np.allclose(out.data, 0.0)
        assert out.shape == x.shape

    def test_skip_is_identity(self, x):
        out = build_op("skip_connect", 4)(x)
        assert np.allclose(out.data, x.data)

    def test_pool_preserves_shape(self, x):
        assert build_op("avg_pool_3x3", 4)(x).shape == x.shape

    def test_convs_preserve_shape(self, x):
        for op in ("nor_conv_1x1", "nor_conv_3x3"):
            assert build_op(op, 4, rng=0)(x).shape == x.shape

    def test_unknown_op_raises(self):
        with pytest.raises(SearchSpaceError):
            build_op("dilated_conv", 4)

    def test_conv_param_count(self):
        op = build_op("nor_conv_3x3", 4, rng=0)
        assert op.num_parameters() == op_params("nor_conv_3x3", 4)

    def test_record_patterns_flag(self, x):
        from repro.nn.layers.activation import ReLU
        op = build_op("nor_conv_3x3", 4, rng=0, record_patterns=True)
        relus = [m for m in op.modules() if isinstance(m, ReLU)]
        assert relus and all(r.record_pattern for r in relus)


class TestCostFormulas:
    def test_flops_zero_for_free_ops(self):
        assert op_flops("none", 16, 32, 32) == 0
        assert op_flops("skip_connect", 16, 32, 32) == 0

    def test_conv3x3_flops(self):
        # MAC convention: C*C*9*H*W.
        assert op_flops("nor_conv_3x3", 16, 32, 32) == 16 * 16 * 9 * 1024

    def test_conv1x1_nine_times_cheaper(self):
        assert op_flops("nor_conv_3x3", 8, 4, 4) == 9 * op_flops("nor_conv_1x1", 8, 4, 4)

    def test_pool_flops(self):
        assert op_flops("avg_pool_3x3", 16, 8, 8) == 9 * 16 * 64

    def test_params_conv_includes_bn(self):
        assert op_params("nor_conv_1x1", 16) == 16 * 16 + 32

    def test_params_zero_for_non_parametric(self):
        for op in ("none", "skip_connect", "avg_pool_3x3"):
            assert op_params(op, 16) == 0
            assert not op_is_parametric(op)

    def test_parametric_flags(self):
        assert op_is_parametric("nor_conv_3x3")
        assert op_is_parametric("nor_conv_1x1")


class TestDagStructure:
    def test_six_edges_four_nodes(self):
        assert len(EDGES) == 6
        nodes = {n for e in EDGES for n in e}
        assert nodes == {0, 1, 2, 3}

    def test_edges_are_forward_only(self):
        assert all(src < dst for src, dst in EDGES)

    def test_every_non_input_node_has_incoming(self):
        for node in (1, 2, 3):
            assert any(dst == node for _, dst in EDGES)

    def test_candidate_ops_canonical_order(self):
        assert CANDIDATE_OPS == (
            "none", "skip_connect", "nor_conv_1x1", "nor_conv_3x3", "avg_pool_3x3"
        )
