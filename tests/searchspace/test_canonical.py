"""Functional canonicalisation and rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchdata.surrogate import SurrogateModel
from repro.searchspace.canonical import (
    canonicalize,
    functionally_equal,
    is_canonical,
    live_edges,
)
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES
from repro.searchspace.render import render_cell

ops_strategy = st.tuples(*[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)])


class TestLiveEdges:
    def test_all_none_has_no_live_edges(self):
        assert live_edges(Genotype(("none",) * 6)) == set()

    def test_fully_connected_all_live(self):
        assert live_edges(Genotype(("nor_conv_3x3",) * 6)) == set(range(6))

    def test_dead_branch_detected(self):
        # Only edge 0->1 carries an op: node 1 never reaches the output.
        ops = ["none"] * 6
        ops[0] = "nor_conv_3x3"
        assert live_edges(Genotype(tuple(ops))) == set()

    def test_unreachable_source_detected(self):
        # Edge 2->3 without anything feeding node 2.
        ops = ["none"] * 6
        ops[5] = "nor_conv_3x3"
        assert live_edges(Genotype(tuple(ops))) == set()


class TestCanonicalize:
    def test_dead_conv_replaced_by_none(self):
        ops = ["none"] * 6
        ops[0] = "nor_conv_3x3"   # dead: node 1 goes nowhere
        ops[3] = "skip_connect"   # live: direct 0->3
        canon = canonicalize(Genotype(tuple(ops)))
        assert canon.ops[0] == "none"
        assert canon.ops[3] == "skip_connect"

    def test_idempotent(self):
        ops = ["none"] * 6
        ops[0] = "avg_pool_3x3"
        g = canonicalize(Genotype(tuple(ops)))
        assert canonicalize(g) == g
        assert is_canonical(g)

    def test_functional_equality(self):
        a = ["none"] * 6
        a[3] = "skip_connect"
        b = list(a)
        b[0] = "nor_conv_3x3"  # dead edge difference only
        assert functionally_equal(Genotype(tuple(a)), Genotype(tuple(b)))

    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_idempotence_property(self, ops):
        g = Genotype(ops)
        assert canonicalize(canonicalize(g)) == canonicalize(g)

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_surrogate_invariant_under_canonicalisation(self, ops):
        """Path-based accuracy must not see dead edges."""
        g = Genotype(ops)
        model = SurrogateModel()
        assert model.quality(g) == pytest.approx(model.quality(canonicalize(g)))


class TestMemoConsistency:
    """The lru_cache memo on `_canonical_ops` must be a pure speedup."""

    @given(ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_memo_agrees_with_uncached_path(self, ops):
        from repro.searchspace.canonical import _canonical_ops

        assert _canonical_ops(ops) == _canonical_ops.__wrapped__(ops)

    def test_randomized_genotypes_seeded_sweep(self):
        """Seeded Hypothesis-style loop: memoized canonicalization equals
        the uncached computation over randomized genotypes, including
        repeat visits (the case the memo actually serves)."""
        import numpy as np

        from repro.searchspace.canonical import _canonical_ops

        rng = np.random.default_rng(2024)
        pool = [
            tuple(CANDIDATE_OPS[i] for i in rng.integers(
                0, len(CANDIDATE_OPS), size=NUM_EDGES))
            for _ in range(64)
        ]
        for _ in range(256):
            ops = pool[int(rng.integers(len(pool)))]
            memoized = canonicalize(Genotype(ops))
            uncached = Genotype(_canonical_ops.__wrapped__(ops))
            assert memoized == uncached
            assert is_canonical(memoized)


class TestRender:
    def test_renders_all_nodes(self, heavy_genotype):
        text = render_cell(heavy_genotype)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0] == "node 0 (input)"
        assert "(output)" in lines[3]

    def test_shows_op_abbreviations(self, heavy_genotype):
        text = render_cell(heavy_genotype)
        assert "3x3(0)" in text
        assert "skip(0)" in text

    def test_none_rendered_as_dot(self, disconnected_genotype):
        assert "·(0)" in render_cell(disconnected_genotype)
