"""Space-level sampling, neighbourhoods, mutation."""

import numpy as np
import pytest

from repro.errors import SearchSpaceError
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES
from repro.searchspace.space import NasBench201Space


@pytest.fixture(scope="module")
def space():
    return NasBench201Space()


class TestBasics:
    def test_size(self, space):
        assert len(space) == 5**6 == 15625

    def test_contains(self, space):
        assert Genotype(("none",) * 6) in space

    def test_restricted_space(self):
        sub = NasBench201Space(ops=("none", "skip_connect"))
        assert len(sub) == 2**6
        assert Genotype(("nor_conv_3x3",) * 6) not in sub

    def test_unknown_op_rejected(self):
        with pytest.raises(SearchSpaceError):
            NasBench201Space(ops=("none", "sep_conv_5x5"))

    def test_get_by_index(self, space):
        assert space.get(0).to_index() == 0

    def test_iteration_starts_at_zero(self, space):
        assert next(iter(space)).to_index() == 0


class TestSampling:
    def test_unique_sampling_no_duplicates(self, space):
        sample = space.sample(200, rng=0)
        assert len({g.to_index() for g in sample}) == 200

    def test_sampling_deterministic(self, space):
        a = [g.to_index() for g in space.sample(10, rng=5)]
        b = [g.to_index() for g in space.sample(10, rng=5)]
        assert a == b

    def test_oversampling_unique_raises(self):
        sub = NasBench201Space(ops=("none", "skip_connect"))
        with pytest.raises(SearchSpaceError):
            sub.sample(65, rng=0)

    def test_with_replacement_allows_more(self):
        sub = NasBench201Space(ops=("none", "skip_connect"))
        sample = sub.sample(100, rng=0, unique=False)
        assert len(sample) == 100

    def test_sample_respects_restricted_ops(self):
        sub = NasBench201Space(ops=("none", "skip_connect"))
        for g in sub.sample(20, rng=1, unique=False):
            assert set(g.ops) <= {"none", "skip_connect"}


class TestNeighbourhood:
    def test_neighbour_count(self, space):
        g = Genotype(("none",) * 6)
        neighbours = space.neighbours(g)
        assert len(neighbours) == NUM_EDGES * (len(CANDIDATE_OPS) - 1)

    def test_neighbours_at_hamming_distance_one(self, space):
        g = Genotype(("nor_conv_3x3",) * 6)
        for n in space.neighbours(g):
            diff = sum(a != b for a, b in zip(g.ops, n.ops))
            assert diff == 1

    def test_mutate_changes_exactly_one_edge(self, space):
        g = Genotype(("none",) * 6)
        mutant = space.mutate(g, rng=3)
        diff = sum(a != b for a, b in zip(g.ops, mutant.ops))
        assert diff == 1

    def test_mutate_deterministic(self, space):
        g = Genotype(("none",) * 6)
        assert space.mutate(g, rng=3) == space.mutate(g, rng=3)

    def test_mutation_stays_in_space(self):
        sub = NasBench201Space(ops=("none", "skip_connect", "nor_conv_1x1"))
        g = Genotype(("none",) * 6)
        rng = np.random.default_rng(0)
        for _ in range(20):
            g = sub.mutate(g, rng=rng)
            assert g in sub
