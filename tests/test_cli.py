"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.algorithm == "micronas"
        assert args.latency_weight == 0.5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--algorithm", "darts"])


class TestQuery(object):
    def test_query_by_index(self, capsys):
        assert main(["query", "11468"]) == 0
        out = capsys.readouterr().out
        assert "accuracy (cifar10)" in out
        assert "nor_conv_3x3" in out

    def test_query_by_arch_string(self, capsys, heavy_genotype):
        assert main(["query", heavy_genotype.to_arch_str()]) == 0
        assert "FLOPs" in capsys.readouterr().out

    def test_bad_arch_string(self):
        from repro.errors import GenotypeError
        with pytest.raises(GenotypeError):
            main(["query", "not-an-arch"])


class TestProxies:
    def test_all_proxies_listed(self, capsys, light_genotype):
        assert main(["proxies", str(light_genotype.to_index()), "--fast"]) == 0
        out = capsys.readouterr().out
        for name in ("ntk", "linear_regions", "synflow", "naswot"):
            assert name in out


@pytest.mark.store
class TestStoreMaintenance:
    def test_inventory_empty_store(self, capsys, tmp_path):
        assert main(["store", "inventory",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "inventory" in out
        assert "(empty)" in out

    def test_inventory_lists_caches_and_luts(self, capsys, tmp_path,
                                             tiny_macro_config):
        from repro.engine.cache import IndicatorCache
        from repro.hardware.device import NUCLEO_F746ZG
        from repro.hardware.latency import LatencyEstimator
        from repro.proxies.base import ProxyConfig
        from repro.runtime.store import RuntimeStore, cache_fingerprint
        from repro.searchspace.network import MacroConfig

        store_dir = str(tmp_path / "store")
        store = RuntimeStore(store_dir)
        cache = IndicatorCache()
        cache.put(("flops", 1, (4,)), 1.0)
        fingerprint = cache_fingerprint(ProxyConfig(), MacroConfig.full())
        store.save_cache(cache, fingerprint)
        LatencyEstimator(NUCLEO_F746ZG, config=tiny_macro_config,
                         lut_store=store)
        assert main(["store", "inventory", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "format 2" in out
        assert "lut nucleo-f746zg" in out

        assert main(["store", "compact", "--store", store_dir]) == 0
        assert "segments folded" in capsys.readouterr().out

        assert main(["store", "gc", "--store", store_dir]) == 0
        assert "store gc" in capsys.readouterr().out

    def test_store_dir_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "inventory"])


class TestPareto:
    def test_prints_front(self, capsys):
        assert main(["pareto", "--samples", "8", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "knee ->" in out


class TestSpaceStats:
    def test_census_printed(self, capsys):
        assert main(["space-stats"]) == 0
        out = capsys.readouterr().out
        assert "15,625" in out
        assert "redundancy" in out


class TestDevices:
    def test_lists_all_boards(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("nucleo-f746zg", "nucleo-f411re", "nucleo-h743zi",
                     "nucleo-l432kc", "rp2040-pico"):
            assert name in out
        assert "cyc/MAC int8" in out


class TestDeploy:
    def test_deployable_arch(self, capsys, light_genotype):
        assert main(["deploy", str(light_genotype.to_index())]) == 0
        out = capsys.readouterr().out
        assert "DEPLOYABLE" in out
        assert "int8 speedup" in out

    def test_too_big_for_l432(self, capsys, heavy_genotype):
        """64 KB SRAM / 256 KB flash cannot hold the full heavy network."""
        code = main(["deploy", str(heavy_genotype.to_index()),
                     "--device", "nucleo-l432kc"])
        assert code == 1
        assert "DOES NOT FIT" in capsys.readouterr().out


class TestMacroSearch:
    def test_fits_skeleton(self, capsys, light_genotype):
        assert main(["macro-search", str(light_genotype.to_index()),
                     "--int8"]) == 0
        out = capsys.readouterr().out
        assert "skeleton" in out
        assert "grid points" in out

    def test_impossible_budget_fails_cleanly(self, capsys, heavy_genotype):
        code = main(["macro-search", str(heavy_genotype.to_index()),
                     "--max-latency-ms", "0.001"])
        assert code == 1
        assert "macro search failed" in capsys.readouterr().out


class TestMemplan:
    def test_prints_strategies(self, capsys, heavy_genotype):
        assert main(["memplan", str(heavy_genotype.to_index())]) == 0
        out = capsys.readouterr().out
        for strategy in ("no_reuse", "first_fit", "greedy_by_size"):
            assert strategy in out

    def test_layout_flag(self, capsys, light_genotype):
        assert main(["memplan", str(light_genotype.to_index()),
                     "--int8", "--layout", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "greedy layout" in out
        assert "offset" in out


class TestHardwareCommands:
    def test_profile_prints_lut(self, capsys):
        assert main(["profile", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "network overhead" in out
        assert "conv" in out

    def test_validate_latency_passes(self, capsys):
        assert main(["validate-latency", "--samples", "5"]) == 0
        assert "mean abs rel error" in capsys.readouterr().out

    def test_unknown_device(self):
        with pytest.raises(SystemExit):
            main(["profile", "--device", "esp32"])


class TestSearchCommand:
    def test_random_search_fast(self, capsys):
        code = main(["search", "--algorithm", "random", "--samples", "4",
                     "--fast", "--latency-weight", "0.0",
                     "--flops-weight", "0.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "architecture" in out
        assert "surrogate CIFAR-10 acc" in out


class TestRuntime:
    def test_runtime_cold_then_warm(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        argv = ["runtime", "--algorithm", "random", "--samples", "6",
                "--workers", "2", "--store", store, "--seed", "3"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "parallel-runtime search run" in cold
        assert "cache warm-start          | 0 entries" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hits / misses" in warm  # table actually rendered
        assert "cache warm-start          | 0 entries" not in warm

    def test_runtime_report_written(self, tmp_path):
        report = tmp_path / "run.json"
        assert main(["runtime", "--algorithm", "random", "--samples", "4",
                     "--report", str(report)]) == 0
        import json
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["config"]["algorithm"] == "random"

    def test_runtime_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["runtime", "--algorithm", "quantum"])

    def test_help_documents_runtime_examples(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "parallel evaluation runtime examples" in out
        assert "--store" in out
