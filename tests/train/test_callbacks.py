"""Early stopping and checkpoint callbacks, plus trainer integration."""

import numpy as np
import pytest

from repro.data import get_dataset
from repro.errors import ReproError
from repro.nn import Conv2d, Linear, ReLU, Sequential
from repro.nn.layers.shape import Flatten
from repro.train import (
    Augmenter,
    BestCheckpoint,
    EarlyStopping,
    Trainer,
    TrainerConfig,
)


def tiny_model(rng=0):
    # imagenet16-120 shapes: 3x16x16 images, 120 classes.
    return Sequential(
        Conv2d(3, 4, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Linear(4 * 16 * 16, 120, rng=rng),
    )


@pytest.fixture(scope="module")
def dataset():
    return get_dataset("imagenet16-120", seed=3)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.4)   # stall 1
        assert stopper.update(0.4)       # stall 2 -> stop
        assert stopper.stopped

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5)
        stopper.update(0.4)
        assert not stopper.update(0.6)   # new best
        assert stopper.stalled == 0

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(0.5)
        assert stopper.update(0.55)      # +0.05 < min_delta -> stall -> stop

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            EarlyStopping(patience=0)
        with pytest.raises(ReproError):
            EarlyStopping(min_delta=-1.0)


class TestBestCheckpoint:
    def test_keeps_best_weights(self):
        model = tiny_model()
        checkpoint = BestCheckpoint(model)
        assert checkpoint.update(0.5, epoch=0)
        best_state = model.state_dict()
        # Worse score: weights drift but the checkpoint must not follow.
        for p in model.parameters():
            p.data += 1.0
        assert not checkpoint.update(0.4, epoch=1)
        checkpoint.restore()
        restored = model.state_dict()
        for key, value in best_state.items():
            np.testing.assert_allclose(restored[key], value)
        assert checkpoint.best_epoch == 0

    def test_restore_without_checkpoint(self):
        with pytest.raises(ReproError):
            BestCheckpoint(tiny_model()).restore()


class TestTrainerIntegration:
    CONFIG = TrainerConfig(epochs=4, batch_size=8, batches_per_epoch=2,
                           lr=0.01, seed=1)

    def test_augmenter_applied(self, dataset):
        """Training with augmentation still optimises (loss finite, runs)."""
        trainer = Trainer(tiny_model(), dataset, config=self.CONFIG,
                          augmenter=Augmenter(crop_padding=2, seed=5))
        history = trainer.fit()
        assert len(history) == 4
        assert all(np.isfinite(s.train_loss) for s in history)

    def test_callbacks_require_evaluation(self, dataset):
        trainer = Trainer(tiny_model(), dataset, config=self.CONFIG)
        with pytest.raises(ReproError, match="evaluate_every"):
            trainer.fit(early_stopping=EarlyStopping(patience=1))

    def test_early_stopping_can_shorten_run(self, dataset):
        trainer = Trainer(tiny_model(), dataset, config=self.CONFIG)
        history = trainer.fit(
            evaluate_every=1,
            early_stopping=EarlyStopping(patience=1, min_delta=1.0),
        )
        # min_delta=1.0 (impossible improvement) stops after patience=1
        # stalls, i.e. by epoch 2 of 4.
        assert len(history) <= 2

    def test_checkpoint_restores_best(self, dataset):
        model = tiny_model()
        trainer = Trainer(model, dataset, config=self.CONFIG)
        checkpoint = BestCheckpoint(model)
        trainer.fit(evaluate_every=1, checkpoint=checkpoint)
        assert checkpoint.has_checkpoint
        best = max(s.eval_accuracy for s in trainer.history
                   if s.eval_accuracy is not None)
        assert checkpoint.best == pytest.approx(best)


class TestAdam:
    def test_adam_reduces_loss(self, dataset):
        from repro.autograd import Tensor, cross_entropy
        from repro.train import Adam

        model = tiny_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        images, labels = dataset.batch(16, rng=0)
        first = None
        for _ in range(8):
            optimizer.zero_grad()
            loss = cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
            loss.clear_tape_grads()
            if first is None:
                first = loss.item()
        assert loss.item() < first

    def test_adam_validation(self):
        from repro.train import Adam
        params = tiny_model().parameters()
        with pytest.raises(ReproError):
            Adam(params, lr=-1.0)
        with pytest.raises(ReproError):
            Adam(params, betas=(1.0, 0.999))
        with pytest.raises(ReproError):
            Adam(params, eps=0.0)
