"""Data augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.train.augment import Augmenter, cutout, random_crop, random_flip


@pytest.fixture()
def batch(rng):
    return rng.normal(size=(6, 3, 8, 8))


class TestRandomFlip:
    def test_always_flip(self, batch):
        rng = np.random.default_rng(0)
        out = random_flip(batch, rng, probability=1.0)
        np.testing.assert_allclose(out, batch[:, :, :, ::-1])

    def test_never_flip(self, batch):
        rng = np.random.default_rng(0)
        out = random_flip(batch, rng, probability=0.0)
        np.testing.assert_allclose(out, batch)

    def test_does_not_mutate_input(self, batch):
        snapshot = batch.copy()
        random_flip(batch, np.random.default_rng(1), probability=1.0)
        np.testing.assert_allclose(batch, snapshot)

    def test_invalid_probability(self, batch):
        with pytest.raises(ReproError):
            random_flip(batch, np.random.default_rng(0), probability=1.5)


class TestRandomCrop:
    def test_preserves_shape(self, batch):
        out = random_crop(batch, np.random.default_rng(0), padding=2)
        assert out.shape == batch.shape

    def test_zero_padding_is_identity(self, batch):
        out = random_crop(batch, np.random.default_rng(0), padding=0)
        np.testing.assert_allclose(out, batch)

    def test_content_is_shifted_window(self, batch):
        """Every output must be a shifted copy with zero fill."""
        out = random_crop(batch, np.random.default_rng(3), padding=2)
        # Total mass can only shrink (pixels shifted out, zeros shifted in).
        assert np.abs(out).sum() <= np.abs(batch).sum() + 1e-9

    def test_negative_padding(self, batch):
        with pytest.raises(ReproError):
            random_crop(batch, np.random.default_rng(0), padding=-1)


class TestCutout:
    def test_zero_size_is_identity(self, batch):
        out = cutout(batch, np.random.default_rng(0), size=0)
        np.testing.assert_allclose(out, batch)

    def test_cuts_one_square(self, batch):
        out = cutout(batch, np.random.default_rng(0), size=3)
        for i in range(len(batch)):
            zeroed = (out[i] == 0) & (batch[i] != 0)
            assert zeroed.any()  # something was cut

    def test_negative_size(self, batch):
        with pytest.raises(ReproError):
            cutout(batch, np.random.default_rng(0), size=-2)


class TestAugmenter:
    def test_identity_configuration(self, batch):
        augmenter = Augmenter(crop_padding=0, flip_probability=0.0,
                              cutout_size=0)
        np.testing.assert_allclose(augmenter(batch), batch)
        assert augmenter.describe() == "identity"

    def test_seeded_reproducibility(self, batch):
        a = Augmenter(crop_padding=2, cutout_size=2, seed=42)(batch)
        b = Augmenter(crop_padding=2, cutout_size=2, seed=42)(batch)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self, batch):
        a = Augmenter(crop_padding=2, seed=1)(batch)
        b = Augmenter(crop_padding=2, seed=2)(batch)
        assert not np.allclose(a, b)

    def test_describe_lists_stages(self):
        augmenter = Augmenter(crop_padding=4, flip_probability=0.5,
                              cutout_size=6)
        text = augmenter.describe()
        assert "crop" in text and "flip" in text and "cutout" in text

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_shape_invariant(self, seed):
        rng = np.random.default_rng(7)
        images = rng.normal(size=(3, 3, 8, 8))
        augmenter = Augmenter(crop_padding=2, cutout_size=2, seed=seed)
        assert augmenter(images).shape == images.shape
