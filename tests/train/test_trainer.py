"""Training loop: learning actually happens on separable synthetic data."""

import numpy as np
import pytest

from repro import nn
from repro.data.synthetic import DatasetSpec, SyntheticImageDataset
from repro.errors import ReproError
from repro.train import Trainer, TrainerConfig
from repro.train.metrics import accuracy_score, confusion_matrix


def tiny_dataset(num_classes=4):
    # Low noise -> easily separable classes.
    spec = DatasetSpec("toy", num_classes, image_size=8)
    return SyntheticImageDataset(spec, noise_sigma=0.25, seed=3)


def tiny_model(num_classes=4):
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=0),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, num_classes, rng=1),
    )


class TestMetrics:
    def test_accuracy_perfect(self):
        logits = np.eye(3)
        assert accuracy_score(logits, np.array([0, 1, 2])) == 1.0

    def test_accuracy_shape_validation(self):
        with pytest.raises(ReproError):
            accuracy_score(np.zeros(3), np.zeros(3, dtype=int))

    def test_confusion_matrix_diagonal(self):
        logits = np.eye(3)
        cm = confusion_matrix(logits, np.array([0, 1, 2]), 3)
        assert np.array_equal(cm, np.eye(3, dtype=np.int64))

    def test_confusion_matrix_counts(self):
        logits = np.array([[2.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        cm = confusion_matrix(logits, np.array([0, 1, 1]), 2)
        assert cm[0, 0] == 1 and cm[1, 0] == 1 and cm[1, 1] == 1


class TestTrainer:
    @pytest.fixture(scope="class")
    def trained(self):
        model = tiny_model()
        trainer = Trainer(
            model,
            tiny_dataset(),
            TrainerConfig(epochs=5, batch_size=24, batches_per_epoch=8,
                          lr=0.1, seed=0),
        )
        history = trainer.fit(evaluate_every=5)
        return trainer, history

    def test_loss_decreases(self, trained):
        _, history = trained
        assert history[-1].train_loss < history[0].train_loss

    def test_learns_above_chance(self, trained):
        trainer, history = trained
        final_eval = trainer.evaluate(num_batches=4)
        assert final_eval > 0.5  # chance = 0.25 for 4 classes

    def test_history_structure(self, trained):
        _, history = trained
        assert len(history) == 5
        assert history[-1].eval_accuracy is not None
        assert history[0].eval_accuracy is None
        assert history[0].lr > history[-1].lr  # cosine decays

    def test_determinism(self):
        def run():
            model = tiny_model()
            trainer = Trainer(model, tiny_dataset(),
                              TrainerConfig(epochs=2, batch_size=8,
                                            batches_per_epoch=3, seed=5))
            trainer.fit()
            return trainer.history[-1].train_loss

        assert run() == run()

    def test_grad_clip_bounds_updates(self):
        model = tiny_model()
        trainer = Trainer(model, tiny_dataset(),
                          TrainerConfig(epochs=1, batch_size=8,
                                        batches_per_epoch=2, lr=10.0,
                                        grad_clip=0.01, seed=0))
        history = trainer.fit()
        assert np.isfinite(history[0].train_loss)

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            Trainer(tiny_model(), tiny_dataset(), TrainerConfig(epochs=0))
