"""Optimizers and LR schedules."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.nn.module import Parameter
from repro.train.optim import SGD
from repro.train.schedules import ConstantLR, CosineLR, StepLR


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value]))
    p.grad = np.array([grad])
    return p


class TestSGD:
    def test_plain_step(self):
        p = make_param()
        SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0).step()
        assert np.isclose(p.data[0], 1.0 - 0.1 * 0.5)

    def test_weight_decay_added_to_gradient(self):
        p = make_param(value=2.0, grad=0.0)
        SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1).step()
        assert np.isclose(p.data[0], 2.0 - 0.1 * 0.1 * 2.0)

    def test_momentum_accumulates(self):
        p = make_param(value=0.0, grad=1.0)
        opt = SGD([p], lr=1.0, momentum=0.5, weight_decay=0.0)
        opt.step()          # v=1, x=-1
        p.grad = np.array([1.0])
        opt.step()          # v=1.5, x=-2.5
        assert np.isclose(p.data[0], -2.5)

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p])
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        with pytest.raises(ReproError):
            SGD([], lr=0.1)
        with pytest.raises(ReproError):
            SGD([make_param()], lr=-1.0)
        with pytest.raises(ReproError):
            SGD([make_param()], momentum=1.0)

    def test_descends_quadratic(self):
        # Minimise f(x) = x^2 from x=3: must approach 0.
        p = Parameter(np.array([3.0]))
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(100):
            p.grad = 2.0 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-2


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.1)
        assert sched.lr_at(0) == sched.lr_at(100) == 0.1

    def test_cosine_endpoints(self):
        sched = CosineLR(0.1, total_epochs=10, min_lr=0.001)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(10) == pytest.approx(0.001)
        assert sched.lr_at(5) == pytest.approx((0.1 + 0.001) / 2)

    def test_cosine_monotone_decreasing(self):
        sched = CosineLR(0.1, total_epochs=20)
        lrs = [sched.lr_at(e) for e in range(21)]
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_step_decay(self):
        sched = StepLR(1.0, step_size=2, gamma=0.1)
        assert sched.lr_at(0) == 1.0
        assert sched.lr_at(2) == pytest.approx(0.1)
        assert sched.lr_at(4) == pytest.approx(0.01)

    def test_apply_sets_optimizer_lr(self):
        opt = SGD([make_param()], lr=1.0)
        CosineLR(0.1, 10).apply(opt, 0)
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ReproError):
            ConstantLR(0.0)
        with pytest.raises(ReproError):
            CosineLR(0.1, 0)
        with pytest.raises(ReproError):
            StepLR(0.1, 0)
