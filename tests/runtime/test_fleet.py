"""Distributed evaluation fleet: broker, leases, elastic membership.

The contracts under test, bottom-up:

* **Wire protocol** — length-prefixed pickled op dicts survive a
  roundtrip; bad handshakes are rejected.
* **Lease semantics** — an expired lease is re-leased exactly once,
  then the chunk completes with a *transient* ``ChunkTimeoutError``; a
  worker disconnect requeues its chunk within the per-task budget and
  completes it with a *worker-lost* ``FleetWorkerLostError`` past it;
  straggler results for chunks that completed elsewhere are dropped.
* **FuturePool contract** — ``FleetPool`` slots into
  ``AsyncPopulationExecutor`` unchanged, and results are bit-identical
  to serial no matter how many workers serve the chunks.
* **Elastic membership** (the headline): a worker SIGKILLed mid-lease
  plus another joining mid-run lose zero rows — surviving results stay
  bit-identical to a fault-free serial run minus quarantined
  candidates, and everything computed is persisted in the shared store.
* **Store-mediated warm starts** — a worker with a ``--store`` serves
  already-persisted rows from the store (index reads) instead of
  recomputing them, and flushes only the freshly computed delta back.
"""

import os
import signal
import socket
import time
from dataclasses import astuple

import numpy as np
import pytest

from repro.engine import Engine
from repro.engine.cache import IndicatorCache
from repro.errors import SearchError
from repro.runtime.async_pool import AsyncPopulationExecutor
from repro.runtime.faults import (
    ChunkTimeoutError,
    FaultPlan,
    FaultPolicy,
    classify_failure,
)
from repro.runtime.fleet import (
    FleetBroker,
    FleetPool,
    FleetWorkerLostError,
    _recv_msg,
    _send_msg,
    parse_address,
    run_worker,
)
from repro.runtime.pool import (
    _evaluate_genotype_chunk,
    _fork_available,
    genotype_indicator_keys,
)
from repro.runtime.store import RuntimeStore, cache_fingerprint
from repro.searchspace.canonical import canonicalize
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space

pytestmark = pytest.mark.fleet

needs_fork = pytest.mark.skipif(not _fork_available(),
                                reason="needs fork start method")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
class Client:
    """A hand-driven fleet worker connection (protocol-level tests)."""

    def __init__(self, broker, token=""):
        self.sock = socket.create_connection((broker.host, broker.port),
                                             timeout=5.0)
        self.sock.settimeout(5.0)
        self.token = token
        self.worker_id = None

    def send(self, **message):
        _send_msg(self.sock, message)

    def recv(self):
        return _recv_msg(self.sock)

    def register(self):
        self.send(op="register", token=self.token, pid=os.getpid())
        reply = self.recv()
        if reply.get("op") == "welcome":
            self.worker_id = reply["worker_id"]
        return reply

    def lease(self):
        self.send(op="lease", worker_id=self.worker_id)
        return self.recv()

    def result(self, task_id, value):
        self.send(op="result", worker_id=self.worker_id,
                  task_id=task_id, value=value)
        return self.recv()

    def error(self, task_id, error):
        self.send(op="error", worker_id=self.worker_id,
                  task_id=task_id, error=error)
        return self.recv()

    def close(self):
        self.sock.close()


def drain_completed(broker, n, timeout=5.0):
    """Collect ``n`` completed tasks (sweeping leases while waiting)."""
    done = []
    deadline = time.monotonic() + timeout
    while len(done) < n and time.monotonic() < deadline:
        done.extend(broker.wait_completed())
    return done


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def echo_chunk(payload):
    """Module-level (picklable) toy chunk worker."""
    return ([(item, {"v": item * 2}) for item in payload], 0.001)


def failing_chunk(payload):
    raise ValueError(f"bad payload {payload!r}")


def slow_genotype_chunk(payload):
    """The real genotype chunk worker, slowed enough that a SIGKILL can
    reliably land mid-lease."""
    rows, seconds = _evaluate_genotype_chunk(payload)
    time.sleep(0.3)
    return rows, seconds


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:7707") == ("127.0.0.1", 7707)
        assert parse_address("broker.local:0") == ("broker.local", 0)
        for bad in ("nocolon", ":123", "host:notaport", "host:"):
            with pytest.raises(SearchError):
                parse_address(bad)

    def test_message_roundtrip(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "result", "task_id": 3,
                       "value": ([(1, {"ntk": 2.5})], 0.25)}
            _send_msg(a, message)
            assert _recv_msg(b) == message
        finally:
            a.close()
            b.close()

    def test_register_and_idle(self):
        with FleetBroker() as broker:
            client = Client(broker)
            assert client.register()["op"] == "welcome"
            assert broker.num_workers == 1
            assert client.lease()["op"] == "idle"  # no work queued
            client.close()

    def test_bad_token_rejected(self):
        with FleetBroker(token="secret") as broker:
            client = Client(broker, token="wrong")
            assert client.register()["op"] == "reject"
            client.close()
            assert wait_until(lambda: broker.rejected == 1, timeout=2.0)
            assert broker.num_workers == 0

    def test_graceful_leave_not_counted_lost(self):
        with FleetBroker() as broker:
            client = Client(broker)
            client.register()
            client.send(op="leave", worker_id=client.worker_id)
            assert client.recv()["op"] == "ok"
            client.close()
            assert wait_until(lambda: broker.num_workers == 0)
            assert broker.workers_lost == 0


# ----------------------------------------------------------------------
# Lease semantics
# ----------------------------------------------------------------------
class TestLeases:
    def test_lease_result_roundtrip(self):
        with FleetBroker() as broker:
            task_id = broker.submit(echo_chunk, [1, 2], tag="t0")
            client = Client(broker)
            client.register()
            reply = client.lease()
            assert reply["op"] == "task" and reply["task_id"] == task_id
            # The shipped callable really is the submitted worker.
            value = reply["worker"](reply["payload"])
            assert client.result(task_id, value)["op"] == "ok"
            (done,) = drain_completed(broker, 1)
            assert done.error is None
            assert done.value == ([(1, {"v": 2}), (2, {"v": 4})], 0.001)
            assert done.tag == "t0"
            client.close()

    def test_expired_lease_releases_exactly_once(self):
        with FleetBroker(lease_seconds=0.15) as broker:
            task_id = broker.submit(echo_chunk, [1])
            client = Client(broker)
            client.register()
            assert client.lease()["op"] == "task"
            # First expiry: requeued, not failed.
            time.sleep(0.2)
            assert broker.wait_completed() == []
            assert broker.lease_expiries == 1
            reply = client.lease()  # the same chunk comes back around
            assert reply["op"] == "task" and reply["task_id"] == task_id
            # Second expiry: completes as a transient timeout.
            time.sleep(0.2)
            (done,) = drain_completed(broker, 1)
            assert isinstance(done.error, ChunkTimeoutError)
            assert classify_failure(done.error) == "transient"
            assert broker.expired_tasks == 1
            client.close()

    def test_disconnect_requeues_then_worker_lost(self):
        with FleetBroker(max_task_disconnects=1) as broker:
            broker.submit(echo_chunk, [1])
            first = Client(broker)
            first.register()
            assert first.lease()["op"] == "task"
            first.close()  # SIGKILL looks exactly like this to the broker
            assert wait_until(lambda: broker.requeues == 1)
            assert broker.workers_lost == 1
            second = Client(broker)
            second.register()
            assert second.lease()["op"] == "task"  # requeued chunk
            second.close()  # budget (1) now spent
            done = drain_completed(broker, 1)
            assert len(done) == 1
            assert isinstance(done[0].error, FleetWorkerLostError)
            assert classify_failure(done[0].error) == "worker-lost"
            assert broker.lost_tasks == 1

    def test_straggler_result_dropped_first_wins(self):
        with FleetBroker(lease_seconds=0.15) as broker:
            task_id = broker.submit(echo_chunk, [5])
            slow = Client(broker)
            slow.register()
            assert slow.lease()["op"] == "task"
            time.sleep(0.2)
            broker.wait_completed()  # sweep: requeue to a second worker
            fast = Client(broker)
            fast.register()
            assert fast.lease()["task_id"] == task_id
            # The original (slow) worker finishes after all: first
            # result wins — determinism makes the copies identical.
            assert slow.result(task_id, "first")["op"] == "ok"
            (done,) = drain_completed(broker, 1)
            assert done.value == "first"
            assert fast.result(task_id, "second")["op"] == "ok"
            assert wait_until(lambda: broker.stragglers == 1)
            slow.close()
            fast.close()

    def test_drain_serves_queue_before_retiring_workers(self):
        with FleetBroker() as broker:
            broker.submit(echo_chunk, [1])
            broker.drain()
            client = Client(broker)
            client.register()
            reply = client.lease()
            assert reply["op"] == "task"  # queued work still served
            client.result(reply["task_id"], "done")
            assert client.lease()["op"] == "drain"  # then retire
            client.close()
            assert wait_until(lambda: broker.num_workers == 0)
            assert broker.workers_lost == 0  # drain exit is graceful


# ----------------------------------------------------------------------
# FleetPool: the FuturePool contract over real worker processes
# ----------------------------------------------------------------------
@needs_fork
class TestFleetPool:
    def test_submit_gather_with_local_workers(self):
        with FleetPool(n_workers=2, lease_seconds=30.0) as pool:
            pool.spawn_local_workers(2)
            ids = [pool.submit(echo_chunk, [k], tag=f"t{k}")
                   for k in range(5)]
            assert pool.num_pending == 5
            results = pool.gather(2)
            assert len(results) >= 2
            results += pool.gather_all()
            assert pool.num_pending == 0
            assert sorted(r.task_id for r in results) == ids
            for result in results:
                assert result.error is None
                (item,) = result.value[0]
                assert item == (int(result.tag[1:]),
                                {"v": int(result.tag[1:]) * 2})

    def test_worker_exception_travels_back(self):
        with FleetPool(n_workers=1, lease_seconds=30.0) as pool:
            pool.spawn_local_workers(1)
            pool.submit(failing_chunk, [9])
            (result,) = pool.gather(1)
            assert isinstance(result.error, ValueError)
            assert classify_failure(result.error) == "poison"

    def test_close_idempotent_and_reaps_workers(self):
        pool = FleetPool(n_workers=1)
        procs = pool.spawn_local_workers(1)
        pool.close()
        pool.close()
        assert wait_until(lambda: not procs[0].is_alive(), timeout=5.0)

    def test_executor_over_fleet_bit_identical(self, tiny_proxy_config):
        population = NasBench201Space().sample(8, rng=11)
        serial = Engine(proxy_config=tiny_proxy_config) \
            .evaluate_population(population)
        engine = Engine(proxy_config=tiny_proxy_config)
        pool = FleetPool(n_workers=2, lease_seconds=60.0)
        executor = AsyncPopulationExecutor(chunk_size=2, pool=pool)
        pool.spawn_local_workers(2)
        try:
            fleet = engine.evaluate_population(population,
                                               executor=executor)
        finally:
            executor.close()
        assert fleet.unique_canonical == serial.unique_canonical
        for name in serial.columns:
            np.testing.assert_array_equal(serial.columns[name],
                                          fleet.columns[name])


# ----------------------------------------------------------------------
# Elastic membership: the headline property
# ----------------------------------------------------------------------
@needs_fork
class TestElasticMembership:
    def test_sigkill_mid_lease_and_join_mid_run(self, tmp_path,
                                                tiny_proxy_config):
        """One worker is SIGKILLed *mid-lease*, a replacement joins
        mid-run, and one scripted poison candidate exercises the
        quarantine path over the fleet: surviving rows must be
        bit-identical to a fault-free serial run minus the quarantined
        candidate, with zero lost rows in the shared store."""
        population = NasBench201Space().sample(10, rng=5)
        serial_engine = Engine(proxy_config=tiny_proxy_config)
        serial_engine.evaluate_population(population)
        serial_rows = dict(serial_engine.cache.items())

        poison_identity = canonicalize(population[0]).to_index()
        plan = FaultPlan(state_path=str(tmp_path / "faults"),
                         script={poison_identity: ("poison",)})
        store_dir = str(tmp_path / "store")
        engine = Engine(proxy_config=tiny_proxy_config)
        pool = FleetPool(n_workers=2, lease_seconds=60.0)
        executor = AsyncPopulationExecutor(
            chunk_size=2,
            genotype_worker=plan.wrap(slow_genotype_chunk),
            fault_policy=FaultPolicy(chunk_timeout=60.0, quarantine=True,
                                     backoff_base=0.01),
            pool=pool,
        )
        victim = pool.spawn_local_workers(1, store_dir=store_dir)[0]
        executor.submit_population(engine, population)

        def victim_freshly_leased():
            with pool.broker._lock:
                return any(task.state == "leased"
                           and task.leased_wall is not None
                           and time.time() - task.leased_wall < 0.15
                           for task in pool.broker._tasks.values())

        assert wait_until(victim_freshly_leased, timeout=30.0), \
            "victim never held a fresh lease"
        os.kill(victim.pid, signal.SIGKILL)
        joiner = pool.spawn_local_workers(1, store_dir=store_dir)[0]
        try:
            while executor.num_pending:
                executor.gather(1)
        finally:
            executor.close()
        assert not victim.is_alive()
        counters = pool.broker.counters()
        assert counters["workers_lost"] >= 1
        assert counters["requeues"] >= 1  # the mid-lease chunk recovered
        assert executor.quarantined_genotypes == {poison_identity}

        # Surviving rows: serial minus the quarantined candidate's.
        quarantined_keys = set(genotype_indicator_keys(
            poison_identity,
            astuple(serial_engine.proxy_config),
            astuple(serial_engine.macro_config),
        ).values())
        survivors = dict(engine.cache.items())
        for key, value in serial_rows.items():
            if key in quarantined_keys:
                assert key not in survivors
            else:
                assert survivors[key] == value  # bit-identical
        # Zero lost persisted rows: every surviving row a worker
        # computed is in the shared store, bit-identical.
        probe = IndicatorCache()
        store = RuntimeStore(store_dir)
        fingerprint = cache_fingerprint(serial_engine.proxy_config,
                                        serial_engine.macro_config)
        loaded = store.load_cache_into(probe, fingerprint)
        assert loaded > 0
        persisted = dict(probe.items())
        for key, value in survivors.items():
            assert persisted[key] == value
        joiner.join(timeout=5.0)


# ----------------------------------------------------------------------
# Store-mediated warm starts
# ----------------------------------------------------------------------
@pytest.mark.store
class TestWarmStart:
    def test_worker_reads_store_and_flushes_only_delta(
            self, tmp_path, tiny_proxy_config):
        macro = MacroConfig.full()
        fingerprint = cache_fingerprint(tiny_proxy_config, macro)
        store = RuntimeStore(tmp_path / "store")
        genotypes = [canonicalize(g)
                     for g in NasBench201Space().sample(4, rng=3)]
        items = tuple((g.ops, (True, True, True)) for g in genotypes)

        # Persist the first two candidates' rows, as a sibling run would.
        warm_rows, _ = _evaluate_genotype_chunk(
            (items[:2], tiny_proxy_config, macro))
        proxy_key = astuple(tiny_proxy_config)
        macro_key = astuple(macro)
        seed_cache = IndicatorCache()
        for index, row in warm_rows:
            keys = genotype_indicator_keys(index, proxy_key, macro_key)
            for name, value in row.items():
                seed_cache.put(keys[name], value)
        assert store.save_cache(seed_cache, fingerprint) == 6

        with FleetBroker() as broker:
            broker.submit(_evaluate_genotype_chunk,
                          (items, tiny_proxy_config, macro))
            stats = run_worker(broker.address,
                               store_dir=str(tmp_path / "store"),
                               poll_seconds=0.01, max_chunks=1)
            (done,) = drain_completed(broker, 1)
        assert done.error is None
        # 2 candidates × 3 indicators warm-started from the store; only
        # the other 2 candidates were computed and flushed back.
        assert stats.store_rows_loaded == 6
        assert stats.store_rows_flushed == 6
        rows = {index: row for index, row in done.value[0]}
        direct, _ = _evaluate_genotype_chunk(
            (items, tiny_proxy_config, macro))
        for index, row in direct:
            for name, value in row.items():
                assert rows[index][name] == value  # bit-identical
        # The store now holds all four candidates.
        probe = IndicatorCache()
        assert store.load_cache_into(probe, fingerprint) == 12

    def test_storeless_worker_still_computes(self, tiny_proxy_config):
        macro = MacroConfig.full()
        genotypes = [canonicalize(g)
                     for g in NasBench201Space().sample(2, rng=9)]
        items = tuple((g.ops, (True, False, True)) for g in genotypes)
        with FleetBroker() as broker:
            broker.submit(_evaluate_genotype_chunk,
                          (items, tiny_proxy_config, macro))
            stats = run_worker(broker.address, poll_seconds=0.01,
                               max_chunks=1)
            (done,) = drain_completed(broker, 1)
        assert done.error is None
        assert stats.store_rows_loaded == 0
        direct, _ = _evaluate_genotype_chunk(
            (items, tiny_proxy_config, macro))
        assert done.value[0] == direct


# ----------------------------------------------------------------------
# Harness + CLI wiring
# ----------------------------------------------------------------------
@needs_fork
class TestHarnessIntegration:
    def test_fleet_run_bit_identical_and_warm(self, tmp_path):
        from repro.runtime import RunHarness, RuntimeConfig

        store = str(tmp_path / "store")
        serial = RunHarness(RuntimeConfig(algorithm="random", samples=8,
                                          seed=3)).run()
        fleet_config = RuntimeConfig(algorithm="random", samples=8,
                                     seed=3, async_mode=True,
                                     fleet_workers=2, store_dir=store,
                                     chunk_size=4, chunk_timeout=120.0)
        fleet = RunHarness(fleet_config).run()
        assert fleet.pool["mode"] == "fleet"
        assert fleet.arch_index == serial.arch_index
        assert fleet.indicators == serial.indicators
        assert fleet.store["read_mode"] == "index"  # satellite: auto
        # A rerun warm-starts entirely from what the workers flushed.
        warm = RunHarness(fleet_config).run()
        assert warm.arch_index == serial.arch_index
        assert warm.cache["misses"] == 0

    def test_fleet_requires_async(self):
        from repro.runtime import RunHarness, RuntimeConfig

        with pytest.raises(SearchError, match="async"):
            RunHarness(RuntimeConfig(fleet_workers=2))


class TestCli:
    def test_runtime_fleet_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["runtime", "--async", "--fleet-bind", "127.0.0.1:0",
             "--fleet-workers", "3", "--fleet-lease", "20",
             "--fleet-token", "t"])
        assert args.fleet_bind == "127.0.0.1:0"
        assert args.fleet_workers == 3
        assert args.fleet_lease_seconds == 20.0
        assert args.fleet_token == "t"
        assert args.store_read_mode == "auto"

    def test_fleet_worker_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fleet", "worker", "--connect", "localhost:7707",
             "--store", "/tmp/s", "--max-chunks", "2"])
        assert args.fn.__name__ == "cmd_fleet_worker"
        assert args.connect == "localhost:7707"
        assert args.read_mode == "index"
