"""Device-matrix runs: one trainless pass shared across every cell."""

import pytest

from repro.errors import SearchError
from repro.runtime import DeviceMatrixReport, RuntimeConfig, run_matrix

pytestmark = pytest.mark.hw

DEVICES = ("nucleo-f746zg", "nucleo-l432kc")


def _matrix_config(**overrides):
    defaults = dict(samples=8, seed=3, fast=True,
                    devices=DEVICES,
                    objectives=("latency", "energy,peak-mem"))
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


class TestConfigValidation:
    def test_unknown_matrix_device_rejected(self):
        from repro.runtime import RunHarness

        with pytest.raises(SearchError, match="unknown matrix device"):
            RunHarness(_matrix_config(devices=("nucleo-f746zg",
                                               "rpi-pico")))

    def test_unknown_cost_axis_rejected(self):
        from repro.runtime import RunHarness

        with pytest.raises(SearchError, match="unknown cost axis"):
            RunHarness(_matrix_config(objectives=("latency", "carbon")))

    def test_objective_sets_parse_comma_joined(self):
        config = _matrix_config()
        assert config.objective_sets() == (("latency",),
                                           ("energy", "peak-mem"))
        assert config.cost_axes() == ("energy", "latency", "peak-mem")

    def test_run_matrix_requires_devices(self):
        with pytest.raises(SearchError, match="devices"):
            run_matrix(_matrix_config(devices=()))


class TestMatrixRun:
    @pytest.fixture(scope="class")
    def report(self):
        return run_matrix(_matrix_config())

    def test_one_cell_per_device_objective_pair(self, report):
        assert isinstance(report, DeviceMatrixReport)
        assert len(report.cells) == 4
        coords = {(c.device, tuple(c.objectives)) for c in report.cells}
        assert coords == {(d, o) for d in DEVICES
                          for o in (("latency",), ("energy", "peak-mem"))}

    def test_every_cell_has_a_front_and_knee(self, report):
        for cell in report.cells:
            assert cell.front
            assert cell.num_fronts >= 1
            assert cell.knee in cell.front
            for axis in cell.objectives:
                assert all(row[axis] >= 0.0 for row in cell.front)
            ordering = [row[cell.objectives[0]] for row in cell.front]
            assert ordering == sorted(ordering)

    def test_trainless_rows_computed_exactly_once(self, report):
        """The exactly-once invariant: one population pass computes every
        unique row; the 4 cells re-price without touching the proxies."""
        assert report.samples == 8
        assert 0 < report.unique_canonical <= report.samples
        # Three trainless entries (ntk / linear_regions / flops) per
        # unique canonical genotype, for the whole 4-cell matrix.
        assert (report.trainless_evals["rows_computed"]
                == 3 * report.unique_canonical)

    def test_cell_lookup(self, report):
        cell = report.cell("nucleo-l432kc", ("energy", "peak-mem"))
        assert cell.device == "nucleo-l432kc"
        with pytest.raises(SearchError, match="no matrix cell"):
            report.cell("nucleo-l432kc", ("flops",))

    def test_cells_share_one_trainless_pass(self, report):
        """Latency-only and energy cells rank the same archs by quality:
        the quality column is priced once, not per cell."""
        for device in DEVICES:
            a = report.cell(device, ("latency",))
            b = report.cell(device, ("energy", "peak-mem"))
            quality = {row["arch_index"]: row["quality_rank"]
                       for row in a.front}
            for row in b.front:
                if row["arch_index"] in quality:
                    assert row["quality_rank"] == quality[row["arch_index"]]

    def test_report_round_trips_json(self, report, tmp_path):
        import json

        path = tmp_path / "matrix.json"
        report.save_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["status"] == "completed"
        assert len(payload["cells"]) == 4
        assert payload["trainless_evals"]["rows_computed"] == \
            3 * report.unique_canonical


class TestStoreMediatedWarmStart:
    def test_second_run_computes_zero_rows(self, tmp_path):
        store = str(tmp_path / "matrix_store")
        cold = run_matrix(_matrix_config(store_dir=store))
        assert cold.trainless_evals["rows_computed"] == \
            3 * cold.unique_canonical
        assert cold.store["cache_saved"] > 0

        warm = run_matrix(_matrix_config(store_dir=store))
        assert warm.trainless_evals["rows_computed"] == 0
        assert warm.trainless_evals["rows_hit"] > 0
        # Same fronts either way: the store round-trip is lossless.
        for cell in cold.cells:
            twin = warm.cell(cell.device, tuple(cell.objectives))
            assert [r["arch_index"] for r in twin.front] == \
                [r["arch_index"] for r in cell.front]

    def test_objective_sets_never_alias_in_the_store(self, tmp_path):
        """Cost axes fold into the store fingerprint: a latency-only
        matrix and an extra-axis matrix must not read each other's rows
        (non-aliasing beats reuse across objective sets by design)."""
        store = str(tmp_path / "matrix_store")
        first = run_matrix(_matrix_config(store_dir=store,
                                          objectives=("latency",)))
        assert first.trainless_evals["rows_computed"] > 0
        second = run_matrix(_matrix_config(store_dir=store,
                                           objectives=("latency",
                                                       "energy,peak-mem")))
        # Different fingerprint, so a full recompute — never a silent
        # cross-objective-set cache hit.
        assert second.trainless_evals["rows_computed"] == \
            3 * second.unique_canonical
        # ...while the *same* objective set warm-starts completely.
        third = run_matrix(_matrix_config(store_dir=store,
                                          objectives=("latency",
                                                      "energy,peak-mem")))
        assert third.trainless_evals["rows_computed"] == 0
