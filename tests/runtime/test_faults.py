"""Fault tolerance: timeouts, retry/backoff, quarantine, respawn, drain.

Everything here runs under a deterministic
:class:`~repro.runtime.faults.FaultPlan` — scripted crash/hang/flake/
poison actions keyed by candidate identity, with cross-process attempt
counting through a flock'd state file — so every failure mode is exact
and replayable.  The central contract: **surviving rows are bit-identical
to a fault-free serial run minus the quarantined candidates**, no matter
what the workers did on the way there.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import Engine
from repro.errors import SearchError
from repro.runtime.async_pool import (
    AsyncPopulationExecutor,
    ChunkGatherError,
    FuturePool,
)
from repro.runtime.faults import (
    POISON,
    TRANSIENT,
    WORKER_LOST,
    ChunkTimeoutError,
    FaultPlan,
    FaultPolicy,
    QuarantineLedger,
    ScriptedPoisonError,
    TransientWorkerError,
    chunk_item_identity,
    classify_failure,
)
from repro.runtime.pool import _evaluate_genotype_chunk
from repro.search.objective import HybridObjective
from repro.searchspace.canonical import canonicalize
from repro.searchspace.space import NasBench201Space

pytestmark = pytest.mark.faults


@pytest.fixture()
def population():
    space = NasBench201Space()
    sample = space.sample(8, rng=21)
    return sample + sample[:3]  # duplicates exercise canonical dedupe


def _engine(tiny_proxy_config):
    return Engine(proxy_config=tiny_proxy_config)


def _canon_index(genotype):
    return canonicalize(genotype).to_index()


def _policy(**kwargs):
    """A test policy whose backoff sleeps are recorded, not paid."""
    slept = []
    kwargs.setdefault("backoff_base", 0.001)
    policy = FaultPolicy(sleep=slept.append, **kwargs)
    policy.slept = slept
    return policy


def _assert_bit_identical(tiny_proxy_config, engine, genotypes):
    serial = _engine(tiny_proxy_config).evaluate_population(genotypes)
    table = engine.evaluate_population(genotypes)
    assert table.cache_misses == 0
    for name in serial.columns:
        np.testing.assert_array_equal(serial.columns[name],
                                      table.columns[name])


# ----------------------------------------------------------------------
# Policy primitives
# ----------------------------------------------------------------------
class TestFailureClassification:
    def test_taxonomy(self):
        assert classify_failure(ChunkTimeoutError("t")) == TRANSIENT
        assert classify_failure(TransientWorkerError("t")) == TRANSIENT
        assert classify_failure(OSError("pipe")) == TRANSIENT
        assert classify_failure(TimeoutError()) == TRANSIENT
        assert classify_failure(ValueError("nan")) == POISON
        assert classify_failure(ScriptedPoisonError(7)) == POISON
        from concurrent.futures import BrokenExecutor

        assert classify_failure(BrokenExecutor("died")) == WORKER_LOST

    def test_backoff_is_deterministic_and_exponential(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_factor=2.0,
                            backoff_jitter=0.25)
        material = ("genotype", (("ntk", 3, 1),))
        first = policy.backoff_delay(material, 0)
        assert first == policy.backoff_delay(material, 0)  # pure function
        # Jitter stays inside +/- 25% of the exponential schedule.
        for attempt in range(4):
            delay = policy.backoff_delay(material, attempt)
            nominal = 0.1 * 2.0 ** attempt
            assert nominal * 0.75 <= delay <= nominal * 1.25
        # Different chunks de-synchronise.
        assert policy.backoff_delay(material, 0) != \
            policy.backoff_delay(("genotype", (("ntk", 4, 1),)), 0)

    def test_policy_validation(self):
        with pytest.raises(SearchError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(SearchError):
            FaultPolicy(chunk_timeout=0.0)


class TestQuarantineLedger:
    def test_round_trip_and_dedupe(self, tmp_path):
        ledger = QuarantineLedger(tmp_path / "q.jsonl")
        assert len(ledger) == 0
        assert ledger.add("genotype", 1462, reason="ValueError('nan')",
                          attempts=3)
        assert not ledger.add("genotype", 1462, reason="again")  # dup
        assert ledger.add("supernet", (("a", 1), ("b", 2)), reason="r")
        assert ("genotype", 1462) in ledger
        assert ledger.identities("genotype") == {1462}
        assert ledger.identities("supernet") == {(("a", 1), ("b", 2))}
        # A fresh reader sees the same facts (tuples survive JSON).
        again = QuarantineLedger(tmp_path / "q.jsonl")
        assert again.identities("supernet") == {(("a", 1), ("b", 2))}
        assert again.entries()[0]["attempts"] == 3

    def test_tolerates_torn_tail_line(self, tmp_path):
        path = tmp_path / "q.jsonl"
        QuarantineLedger(path).add("genotype", 5, reason="r")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "genotype", "identity": 9, "rea')  # crash
        ledger = QuarantineLedger(path)
        assert ledger.identities("genotype") == {5}
        assert ledger.add("genotype", 6, reason="r")  # still writable


class TestFaultPlan:
    def test_scripted_actions_consume_in_order(self, tmp_path):
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={7: ("flake", "crash", "ok")})
        assert plan.action_for(7) == "flake"
        assert plan.action_for(7) == "crash"
        assert plan.action_for(7) == "ok"
        assert plan.action_for(7) == "ok"      # exhausted: healed
        assert plan.action_for(8) == "ok"      # unscripted: clean

    def test_trailing_poison_never_heals(self, tmp_path):
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={3: ("poison",)})
        for _ in range(4):
            assert plan.action_for(3) == "poison"

    def test_hash_faults_fire_once_and_deterministically(self, tmp_path):
        plan = FaultPlan(state_path=str(tmp_path / "s"), hash_rate=0.5,
                         hash_actions=("flake",))
        first = {i: plan.action_for(i) for i in range(40)}
        faulted = [i for i, a in first.items() if a == "flake"]
        assert 0 < len(faulted) < 40  # rate selected a strict subset
        # Same identities fault under a fresh plan (digest-driven)...
        replay = FaultPlan(state_path=str(tmp_path / "s2"), hash_rate=0.5,
                           hash_actions=("flake",))
        assert [i for i in range(40)
                if replay.action_for(i) == "flake"] == faulted
        # ...and non-poison hash faults heal after one attempt.
        assert all(plan.action_for(i) == "ok" for i in faulted)

    def test_attempt_counters_shared_through_state_file(self, tmp_path):
        # Two plan objects over one state file behave like two processes.
        a = FaultPlan(state_path=str(tmp_path / "s"), script={1: ("flake",)})
        b = FaultPlan(state_path=str(tmp_path / "s"), script={1: ("flake",)})
        assert a.action_for(1) == "flake"
        assert b.action_for(1) == "ok"  # b sees a's attempt

    def test_unknown_action_rejected(self, tmp_path):
        with pytest.raises(SearchError):
            FaultPlan(state_path=str(tmp_path / "s"),
                      script={1: ("explode",)})

    def test_identity_extraction(self, population):
        ops = canonicalize(population[0]).ops
        assert chunk_item_identity(
            "genotype", (ops, (True, True, True))
        ) == _canon_index(population[0])
        state = (("spec", 1),)
        assert chunk_item_identity("supernet", (state, (True, True))) \
            == state


# ----------------------------------------------------------------------
# Transport: deadlines, hung workers, pool death, close() hardening
# ----------------------------------------------------------------------
class TestChunkTimeouts:
    def test_timeout_expiry_releases_the_gather(self):
        release = threading.Event()

        def stuck_worker(payload):
            release.wait(timeout=20.0)
            return payload

        pool = FuturePool(n_workers=1, mode="thread", chunk_timeout=0.2)
        try:
            pool.submit(stuck_worker, "wedged", tag="t")
            start = time.monotonic()
            results = pool.gather_all()
            assert time.monotonic() - start < 5.0  # did not block forever
            assert len(results) == 1
            assert isinstance(results[0].error, ChunkTimeoutError)
            assert results[0].tag == "t"
            assert pool.timeouts == 1
            assert pool.num_pending == 0
        finally:
            release.set()  # let the abandoned thread finish
            pool.close()

    def test_fast_chunks_unaffected_by_deadline(self):
        with FuturePool(n_workers=2, mode="thread",
                        chunk_timeout=30.0) as pool:
            for i in range(6):
                pool.submit(lambda x: x * 2, i)
            values = sorted(r.value for r in pool.gather_all())
            assert values == [0, 2, 4, 6, 8, 10]
            assert pool.timeouts == 0

    def test_close_never_blocks_on_hung_workers(self):
        release = threading.Event()

        def stuck_worker(payload):
            release.wait(timeout=20.0)
            return payload

        pool = FuturePool(n_workers=1, mode="thread", chunk_timeout=0.2)
        try:
            pool.submit(stuck_worker, "wedged")
            results = pool.gather_all()
            assert isinstance(results[0].error, ChunkTimeoutError)
            start = time.monotonic()
            pool.close()   # must not wait out the 20s sleeper
            pool.close()   # idempotent
            assert time.monotonic() - start < 5.0
        finally:
            release.set()


def _crash_worker(payload):
    os._exit(23)


def _crash_once_worker(payload):
    # Crashes the first process that runs it, then heals: the flag file
    # is created *before* the _exit, so the resubmitted task sees it.
    flag, value = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(23)
    return value


def _plus_one(value):
    return value + 1


class TestPoolRespawn:
    def test_broken_pool_respawns_and_resubmits_exactly_once(
            self, tmp_path):
        flag = str(tmp_path / "crashed.flag")
        pool = FuturePool(n_workers=2, mode="fork")
        try:
            pool.submit(_crash_once_worker, (flag, 99), tag="boom")
            for i in range(3):
                pool.submit(_plus_one, i, tag=f"ok{i}")
            results = pool.gather_all()
            # The crash killed the pool once; the respawn resubmitted
            # every lost task and ALL of them (crasher included, now
            # healed) completed — nothing lost, nothing duplicated.
            assert sorted(r.value for r in results) == [1, 2, 3, 99]
            assert all(r.error is None for r in results)
            assert pool.respawns == 1
            assert pool.num_pending == 0
        finally:
            pool.close()

    def test_sticky_crasher_burns_budget_then_fails(self):
        pool = FuturePool(n_workers=1, mode="fork", max_respawns=2)
        try:
            pool.submit(_crash_worker, None, tag="boom")
            results = pool.gather_all()
            assert pool.respawns == 2       # every recovery was tried
            assert len(results) == 1
            assert results[0].error is not None  # then it surfaced
            assert pool.num_pending == 0
        finally:
            pool.close()

    def test_close_is_idempotent_after_broken_pool(self):
        pool = FuturePool(n_workers=1, mode="fork", max_respawns=0)
        pool.submit(_crash_worker, None)
        results = pool.gather_all()
        assert results[0].error is not None  # budget 0: surfaced as-is
        pool.close()
        pool.close()  # second close after breakage: silent no-op


# ----------------------------------------------------------------------
# Executor: retry, bisection, quarantine
# ----------------------------------------------------------------------
class TestTransientRetry:
    def test_flaky_chunk_retries_to_bit_identical_rows(
            self, tiny_proxy_config, population, tmp_path):
        target = _canon_index(population[2])
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={target: ("flake", "flake")})
        policy = _policy(max_retries=3)
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(
            n_workers=1, chunk_size=3, mode="serial",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=policy,
        )
        executor.submit_population(engine, population)
        executor.gather_all()
        assert executor.stats.retries == 2
        assert executor.stats.quarantined == 0
        assert len(policy.slept) == 2  # backoff paid per retry
        assert executor.num_pending == 0
        _assert_bit_identical(tiny_proxy_config, engine, population)

    def test_transient_budget_exhaustion_surfaces_failure(
            self, tiny_proxy_config, population, tmp_path):
        target = _canon_index(population[0])
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={target: ("flake",) * 5})
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(
            n_workers=1, chunk_size=100, mode="serial",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=_policy(max_retries=1),
        )
        executor.submit_population(engine, population)
        with pytest.raises(ChunkGatherError) as info:
            executor.gather_all()
        assert isinstance(info.value.__cause__, TransientWorkerError)
        assert executor.stats.retries == 1  # budget, not the script, won
        # Claims were released: the candidates are resubmittable.
        assert executor.submit_population(engine, population) == 1


class TestPoisonQuarantine:
    def test_bisection_quarantines_exactly_the_bad_genotype(
            self, tiny_proxy_config, population, tmp_path):
        target = _canon_index(population[3])
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={target: ("poison",)})
        ledger = QuarantineLedger(tmp_path / "q.jsonl")
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(
            n_workers=1, chunk_size=8, mode="serial",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=_policy(), quarantine_ledger=ledger,
        )
        executor.submit_population(engine, population)
        chunks = executor.gather_all()   # no raise: poison was contained
        assert executor.quarantined_genotypes == {target}
        assert executor.stats.quarantined == 1
        assert ledger.identities("genotype") == {target}
        quarantined_events = [c for c in chunks if c.quarantined_indices]
        assert [c.quarantined_indices for c in quarantined_events] \
            == [(target,)]
        # Every chunk-mate of the poison candidate still landed, and the
        # survivors are bit-identical to fault-free serial.
        survivors = [g for g in population if _canon_index(g) != target]
        assert executor.num_pending == 0
        _assert_bit_identical(tiny_proxy_config, engine, survivors)

    def test_quarantined_candidate_never_reships(
            self, tiny_proxy_config, population, tmp_path):
        target = _canon_index(population[1])
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={target: ("poison",)})
        ledger = QuarantineLedger(tmp_path / "q.jsonl")
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(
            n_workers=1, chunk_size=4, mode="serial",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=_policy(), quarantine_ledger=ledger,
        )
        executor.submit_population(engine, population)
        executor.gather_all()
        # Same population again: everything is cached or banned.
        assert executor.submit_population(engine, population) == 0
        # A *new* executor seeded from the persisted ledger (a restart)
        # refuses to ship it too, against a cold engine.
        fresh_engine = _engine(tiny_proxy_config)
        restarted = AsyncPopulationExecutor(
            n_workers=1, chunk_size=4, mode="serial",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=_policy(),
            quarantine_ledger=QuarantineLedger(tmp_path / "q.jsonl"),
        )
        assert restarted.quarantined_genotypes == {target}
        restarted.submit_population(fresh_engine, [population[1]])
        assert restarted.num_pending == 0

    def test_without_policy_poison_raises_as_before(
            self, tiny_proxy_config, population):
        def dead_worker(payload):
            raise ValueError("worker died")

        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=100,
                                           mode="serial",
                                           genotype_worker=dead_worker)
        executor.submit_population(engine, population)
        with pytest.raises(ChunkGatherError):
            executor.gather_all()


class TestClaimReleaseWithFlushFailure:
    def test_claims_released_when_flush_raises_alongside_failure(
            self, tiny_proxy_config, population):
        """Satellite regression: a flush-hook error riding along with a
        worker failure must not leak the failed chunk's in-flight claims
        — a leaked claim would dedupe the key out of every future
        submit, permanently."""
        calls = {"n": 0}

        def flaky_worker(payload):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ValueError("worker died")
            return _evaluate_genotype_chunk(payload)

        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                           mode="serial",
                                           genotype_worker=flaky_worker)

        def broken_flush(gathered):
            raise OSError("disk full")

        executor.on_gather = broken_flush
        executor.submit_population(engine, population)
        with pytest.raises(ChunkGatherError) as info:
            executor.gather_all()
        assert isinstance(info.value.flush_error, OSError)
        # No claims leaked anywhere: every in-flight set is empty.
        assert all(not keys for keys in executor._in_flight.values())
        # And the failed candidates are genuinely resubmittable.
        executor.on_gather = None
        assert executor.submit_population(engine, population) == 1
        assert executor.gather_all()[0].merged_rows > 0
        _assert_bit_identical(tiny_proxy_config, engine, population)


# ----------------------------------------------------------------------
# Worker-death recovery through the executor (fork)
# ----------------------------------------------------------------------
class TestWorkerDeathRecovery:
    def test_crash_respawns_and_completes_without_duplicates(
            self, tiny_proxy_config, population, tmp_path):
        target = _canon_index(population[4])
        plan = FaultPlan(state_path=str(tmp_path / "s"),
                         script={target: ("crash",)})
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(
            n_workers=2, chunk_size=2, mode="fork",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=FaultPolicy(backoff_base=0.001),
        )
        try:
            executor.submit_population(engine, population)
            merged = sum(c.merged_rows for c in executor.gather_all())
        finally:
            executor.close()
        assert executor.stats.respawns >= 1
        assert executor.stats.quarantined == 0
        # Exactly-once resubmission: every row merged exactly once (the
        # cache would reject duplicates, so merged == all needed rows).
        unique = {_canon_index(g) for g in population}
        assert merged == 3 * len(unique)
        assert executor.num_pending == 0
        _assert_bit_identical(tiny_proxy_config, engine, population)


# ----------------------------------------------------------------------
# Steady-state search under a fuzzed 20% mixed fault plan
# ----------------------------------------------------------------------
class TestSteadyStateUnderFaults:
    def test_fuzzed_faults_quarantine_and_stay_bit_identical(
            self, tiny_proxy_config, tmp_path):
        from repro.search.evolutionary import (
            EvolutionConfig,
            SteadyStateEvolutionarySearch,
        )

        plan = FaultPlan(state_path=str(tmp_path / "s"), hash_rate=0.2,
                         hash_actions=("flake", "poison"))
        ledger = QuarantineLedger(tmp_path / "q.jsonl")
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(
            n_workers=1, chunk_size=1, mode="serial",
            genotype_worker=plan.wrap(_evaluate_genotype_chunk),
            fault_policy=_policy(max_retries=2), quarantine_ledger=ledger,
        )
        result = SteadyStateEvolutionarySearch(
            HybridObjective(engine=engine),
            EvolutionConfig(population_size=6, sample_size=2, cycles=10),
            seed=11,
            executor=executor,
        ).search()
        assert result.genotype is not None
        banned = executor.quarantined_genotypes
        assert _canon_index(result.genotype) not in banned
        # Everything the search committed is bit-identical to serial.
        landed = [key for key in engine.cache.items()]
        assert landed
        serial = _engine(tiny_proxy_config)
        for key, value in landed:
            assert key[1] not in banned  # nothing quarantined ever landed
        # The winner's indicators replay exactly on a fault-free engine.
        assert result.indicators == serial.evaluate(result.genotype,
                                                    with_latency=False)


# ----------------------------------------------------------------------
# Graceful drain (signal-driven, subprocess)
# ----------------------------------------------------------------------
_DRAIN_SCRIPT = """
import json, os, signal, sys

from repro.engine import Engine
from repro.runtime import RunHarness, RuntimeConfig
from repro.runtime.store import RuntimeStore, cache_fingerprint

store_dir, out_path = sys.argv[1], sys.argv[2]
config = RuntimeConfig(algorithm="steady-state", n_workers=2, chunk_size=1,
                       async_mode=True, store_dir=store_dir,
                       population_size=6, cycles=60, seed=3)
harness = RunHarness(config)
flush = harness.executor.on_gather
state = {"n": 0}

def hook(gathered):
    flush(gathered)
    state["n"] += 1
    if state["n"] == 2:  # mid-run, deterministically
        os.kill(os.getpid(), signal.SIGTERM)

harness.executor.on_gather = hook
report = harness.run()

# Zero-lost-rows check: every cache row this run computed must be
# readable back from the store by a fresh process-alike reader.
fresh = Engine(proxy_config=harness.proxy_config,
               macro_config=harness.macro_config)
loaded = RuntimeStore(store_dir).load_cache_into(fresh.cache,
                                                 harness.fingerprint)
persisted = {key for key, _ in fresh.cache.items()}
computed = {key for key, _ in harness.engine.cache.items()}
json.dump({
    "status": report.status,
    "committed_evals": report.num_evaluations,
    "loaded": loaded,
    "missing": sorted(map(str, computed - persisted)),
}, open(out_path, "w"))
"""


class TestGracefulDrain:
    def test_sigterm_drains_with_zero_lost_rows(self, tmp_path):
        out = tmp_path / "report.json"
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run(
            [sys.executable, "-c", _DRAIN_SCRIPT,
             str(tmp_path / "store"), str(out)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out.read_text())
        assert payload["status"] == "interrupted"
        assert payload["missing"] == []   # zero persisted rows lost
        assert payload["loaded"] > 0      # ...and the drain saved work

    def test_second_signal_aborts(self, tiny_proxy_config):
        """The drain handler escalates: a second signal raises."""
        from repro.runtime import RunHarness, RuntimeConfig

        harness = RunHarness(RuntimeConfig(algorithm="steady-state",
                                           async_mode=True, n_workers=1,
                                           population_size=4, cycles=2))
        try:
            harness._handle_drain_signal(signal.SIGTERM, None)
            assert harness._drain_requested
            assert harness.executor.drain_requested
            with pytest.raises(KeyboardInterrupt):
                harness._handle_drain_signal(signal.SIGTERM, None)
        finally:
            harness.close()

    def test_drain_flag_stops_spawning(self, tiny_proxy_config):
        from repro.search.evolutionary import (
            EvolutionConfig,
            SteadyStateEvolutionarySearch,
        )

        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=1,
                                           mode="serial",
                                           fault_policy=_policy())
        executor.request_drain()  # drained before the search even starts
        engine = _engine(tiny_proxy_config)
        result = SteadyStateEvolutionarySearch(
            HybridObjective(engine=engine),
            EvolutionConfig(population_size=4, sample_size=2, cycles=50),
            seed=2,
            executor=executor,
        ).search()
        # The initial population landed (it was already submitted), but
        # no children were spawned on top of it.
        assert result.genotype is not None
        assert result.ledger.counts["evolution_candidates"] == 4
