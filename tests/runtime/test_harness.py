"""One RuntimeConfig wires engine + pool + store and runs any algorithm."""

import pytest

from repro.errors import SearchError
from repro.runtime import (
    ALGORITHMS,
    RunHarness,
    RuntimeConfig,
    register_algorithm,
)


def _quick_config(**overrides):
    defaults = dict(algorithm="random", samples=6, seed=3, fast=True)
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


class TestRunHarness:
    def test_random_run_reports(self):
        report = RunHarness(_quick_config()).run()
        assert report.algorithm == "random-zeroshot"
        assert report.arch_str
        assert set(report.indicators) >= {"ntk", "linear_regions", "flops"}
        assert report.cache["misses"] > 0
        assert report.pool["n_workers"] == 1
        assert report.store["dir"] is None

    def test_store_warm_start_round_trip(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = RunHarness(_quick_config(store_dir=store_dir)).run()
        assert cold.cache["warm_start_entries"] == 0
        assert cold.store["cache_saved"] > 0

        warm = RunHarness(_quick_config(store_dir=store_dir)).run()
        assert warm.cache["warm_start_entries"] == cold.store["cache_saved"]
        assert warm.cache["misses"] == 0
        assert warm.arch_str == cold.arch_str

    def test_luts_shared_across_devices_in_one_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        config = _quick_config(latency_weight=0.5, store_dir=store_dir)
        first = RunHarness(config).run()
        assert [meta["device"] for meta in first.store["luts"]] == \
            ["nucleo-f746zg"]
        second = RunHarness(_quick_config(latency_weight=0.5,
                                          store_dir=store_dir,
                                          device="nucleo-l432kc")).run()
        devices = sorted(meta["device"] for meta in second.store["luts"])
        assert devices == ["nucleo-f746zg", "nucleo-l432kc"]
        third = RunHarness(config)
        assert third.engine.latency_estimator.lut_from_store

    def test_trainless_evolutionary_and_pruning_run(self, tmp_path):
        store_dir = str(tmp_path / "store")
        evo = RunHarness(_quick_config(
            algorithm="trainless-evolutionary", population_size=5,
            sample_size=2, cycles=4, store_dir=store_dir,
        )).run()
        assert evo.algorithm == "evolutionary-trainless"
        pruning = RunHarness(_quick_config(
            algorithm="pruning", flops_weight=0.5, store_dir=store_dir,
        )).run()
        assert pruning.algorithm == "micronas"
        assert pruning.cache["warm_start_entries"] > 0  # shared store

    def test_train_based_evolutionary_rejects_indicator_weights(self):
        base = dict(algorithm="evolutionary", population_size=4,
                    sample_size=2, cycles=2)
        with pytest.raises(SearchError):
            RunHarness(_quick_config(latency_weight=0.5, **base)).run()
        report = RunHarness(_quick_config(**base)).run()
        assert report.algorithm == "evolutionary-munas"

    def test_macro_algorithm_needs_arch(self):
        with pytest.raises(SearchError):
            RunHarness(_quick_config(algorithm="macro")).run()
        report = RunHarness(_quick_config(algorithm="macro",
                                          arch=1462)).run()
        assert report.algorithm == "macro-stage"
        assert report.indicators["latency"] > 0
        assert report.history[0]["skeleton"]["init_channels"] >= 4

    def test_unknown_algorithm_and_device_rejected(self):
        with pytest.raises(SearchError):
            RunHarness(_quick_config(algorithm="quantum"))
        with pytest.raises(SearchError):
            RunHarness(_quick_config(device="esp32"))

    def test_report_serialises(self, tmp_path):
        report = RunHarness(_quick_config()).run()
        path = tmp_path / "report.json"
        report.save_json(str(path))
        import json

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["algorithm"] == "random-zeroshot"
        assert payload["config"]["algorithm"] == "random"
        assert payload["pool"]["mode"] in ("serial", "fork-pool")

    def test_async_mode_runs_any_algorithm(self):
        report = RunHarness(_quick_config(async_mode=True)).run()
        assert report.algorithm == "random-zeroshot"
        assert report.pool["mode"] == "serial"  # n_workers=1 fallback
        assert "idle_fraction" in report.pool

    def test_steady_state_needs_async_executor(self):
        with pytest.raises(SearchError):
            RunHarness(_quick_config(algorithm="steady-state",
                                     population_size=4, cycles=3)).run()
        report = RunHarness(_quick_config(algorithm="steady-state",
                                          async_mode=True,
                                          population_size=4,
                                          cycles=3)).run()
        assert report.algorithm == "evolutionary-steady-state"
        assert set(report.indicators) >= {"ntk", "linear_regions", "flops"}

    def test_steady_state_serial_reproducible(self):
        config = _quick_config(algorithm="steady-state", async_mode=True,
                               population_size=4, cycles=3)
        first = RunHarness(config).run()
        second = RunHarness(config).run()
        assert first.arch_index == second.arch_index
        assert first.indicators == second.indicators

    def test_steady_state_warm_starts_from_store(self, tmp_path):
        config = _quick_config(algorithm="steady-state", async_mode=True,
                               population_size=4, cycles=3,
                               store_dir=str(tmp_path / "store"))
        cold = RunHarness(config).run()
        assert cold.store["cache_saved"] > 0
        warm = RunHarness(config).run()
        assert warm.cache["warm_start_entries"] == cold.store["cache_saved"]
        assert warm.cache["misses"] == 0
        assert warm.arch_index == cold.arch_index

    def test_executors_closed_deterministically_no_leaked_processes(self):
        """The harness (not GC timing) ends worker lifetimes: after run()
        or the context manager, no forked worker may survive."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        for async_mode in (False, True):
            config = _quick_config(n_workers=2, chunk_size=2,
                                   async_mode=async_mode)
            with RunHarness(config) as harness:
                harness.run()  # run() closes on completion...
                assert multiprocessing.active_children() == []
            assert multiprocessing.active_children() == []

        # ...and the context manager alone closes a pool that was used
        # without run() (executor handed straight to an engine).
        from repro.searchspace.space import NasBench201Space

        config = _quick_config(n_workers=2, chunk_size=2)
        with RunHarness(config) as harness:
            harness.engine.evaluate_population(
                NasBench201Space().sample(5, rng=2),
                executor=harness.executor,
            )
            assert len(multiprocessing.active_children()) > 0
        assert multiprocessing.active_children() == []

    def test_register_algorithm_extends_registry(self):
        @register_algorithm("noop-test")
        def _noop(harness):
            from repro.search.result import SearchResult
            from repro.searchspace.genotype import Genotype

            return SearchResult(genotype=Genotype.from_index(0),
                                algorithm="noop-test")

        try:
            assert "noop-test" in ALGORITHMS
            report = RunHarness(_quick_config(algorithm="noop-test")).run()
            assert report.algorithm == "noop-test"
        finally:
            ALGORITHMS.pop("noop-test", None)
