"""Shard-selective loads and the per-shard key index sidecar.

This file pins the read-side acceptance criteria of the million-row
store tier: ``selective``/``index`` loads are **bit-identical** to full
replay under fuzzed write orders, torn tails and damaged sidecars (the
index is an accelerator, never an authority over row data); flushes
extend the index by pure append (the structural O(delta) property);
stale indexes fall back to shard replay and heal at the next
compaction; and the whole path stays correct when a reader races a
compactor or two concurrent writers.
"""

import json
import multiprocessing
import random
import time

import pytest

from repro.engine.cache import IndicatorCache
from repro.proxies.base import ProxyConfig
from repro.runtime.store import (
    RuntimeStore,
    StoreError,
    cache_fingerprint,
    _encode_key,
    _shard_of,
)
from repro.searchspace.network import MacroConfig

pytestmark = pytest.mark.store


@pytest.fixture()
def fingerprint():
    return cache_fingerprint(ProxyConfig(), MacroConfig.full())


@pytest.fixture()
def store(tmp_path):
    return RuntimeStore(tmp_path / "store", shards=8,
                        auto_compact_segments=None)


def key(i):
    return ("ntk", i, 1, ())


def fill(store, fingerprint, start, count):
    cache = IndicatorCache()
    for i in range(start, start + count):
        cache.put(key(i), float(i) * 1.5)
    store.save_cache(cache, fingerprint)


def load(store, fingerprint, keys, mode, strict=True):
    target = IndicatorCache()
    loaded = store.load_cache_into(target, fingerprint, keys=keys,
                                   read_mode=mode, strict=strict)
    return loaded, dict(target.items())


class TestReadModeBasics:
    def test_unknown_read_mode_raises(self, store, fingerprint):
        with pytest.raises(StoreError):
            store.load_cache_into(IndicatorCache(), fingerprint,
                                  keys=[key(1)], read_mode="psychic")

    def test_selective_touches_only_hashed_shards(self, store, fingerprint):
        fill(store, fingerprint, 0, 100)
        store.compact_cache(fingerprint)
        population = [key(i) for i in (3, 17, 42)]
        loaded, rows = load(store, fingerprint, population, "selective")
        assert loaded == 3
        assert rows == {key(i): float(i) * 1.5 for i in (3, 17, 42)}
        stats = store.last_load_stats
        assert stats["mode"] == "selective"
        assert 1 <= stats["shards_touched"] <= 3

    def test_index_serves_every_hit_without_fallback(self, store,
                                                     fingerprint):
        fill(store, fingerprint, 0, 100)
        store.compact_cache(fingerprint)
        population = [key(i) for i in range(0, 100, 9)]
        loaded, rows = load(store, fingerprint, population, "index")
        assert loaded == len(population)
        stats = store.last_load_stats
        assert stats["index_hits"] == len(population)
        assert stats["index_fallback_shards"] == 0

    def test_fresh_index_miss_is_authoritative(self, store, fingerprint):
        fill(store, fingerprint, 0, 20)
        store.compact_cache(fingerprint)
        loaded, rows = load(store, fingerprint,
                            [key(5), key(999)], "index")
        assert loaded == 1
        assert rows == {key(5): 7.5}
        # The absent key was answered by the index, not by a replay.
        assert store.last_load_stats["index_fallback_shards"] == 0

    def test_selected_rows_are_marked_clean(self, store, fingerprint):
        fill(store, fingerprint, 0, 10)
        reader = IndicatorCache()
        store.load_cache_into(reader, fingerprint, keys=[key(3), key(4)],
                              read_mode="index")
        assert store.save_cache(reader, fingerprint) == 0

    def test_in_memory_value_wins_over_store(self, store, fingerprint):
        fill(store, fingerprint, 0, 10)
        reader = IndicatorCache()
        reader.put(key(3), -1.0)
        store.load_cache_into(reader, fingerprint, keys=[key(3)],
                              read_mode="index")
        assert dict(reader.items())[key(3)] == -1.0

    def test_cold_store_selected_load(self, store, fingerprint):
        loaded, rows = load(store, fingerprint, [key(1)], "index",
                            strict=False)
        assert loaded == 0 and rows == {}
        assert store.last_rejection == "no persisted cache"


class TestIndexMaintenance:
    def test_flush_extends_index_by_pure_append(self, store, fingerprint):
        """The O(delta) property, structurally: a post-compaction flush
        must leave the sorted region and header untouched — the old
        sidecar bytes are a strict prefix of the new ones."""
        fill(store, fingerprint, 0, 50)
        store.compact_cache(fingerprint)
        directory = store.cache_dir(fingerprint)
        before = {path.name: path.read_bytes()
                  for path in directory.glob("shard-*.idx.json")}
        fill(store, fingerprint, 50, 10)
        grew = 0
        for path in directory.glob("shard-*.idx.json"):
            data = path.read_bytes()
            old = before.get(path.name)
            if old is not None:
                assert data.startswith(old), path.name
                grew += data != old
        assert grew > 0

    def test_fresh_shard_indexes_without_compaction(self, store,
                                                    fingerprint):
        fill(store, fingerprint, 0, 30)
        population = [key(i) for i in range(0, 30, 7)]
        loaded, rows = load(store, fingerprint, population, "index")
        assert loaded == len(population)
        assert store.last_load_stats["index_hits"] == len(population)
        assert store.last_load_stats["index_fallback_shards"] == 0

    def test_foreign_segment_goes_stale_and_compaction_heals(
            self, store, fingerprint):
        """A writer without index support (or a hand-copied segment)
        must flip the covers check to stale — replay fallback, never a
        wrong answer — and the next compaction rebuilds coverage."""
        fill(store, fingerprint, 0, 20)
        store.compact_cache(fingerprint)
        target = key(7)
        shard = _shard_of(_encode_key(target), 8)
        directory = store.cache_dir(fingerprint)
        rogue = directory / f"shard-{shard:02d}.seg-00000099.1.jsonl"
        rogue.write_text(
            json.dumps([_encode_key(target), 777.0]) + "\n",
            encoding="utf-8")
        loaded, rows = load(store, fingerprint, [target], "index")
        assert loaded == 1 and rows == {target: 777.0}
        assert store.last_load_stats["index_fallback_shards"] == 1
        # A further flush must not "patch" the stale index into lying…
        fill(store, fingerprint, 100, 5)
        loaded, rows = load(store, fingerprint, [target], "index")
        assert rows == {target: 777.0}
        # …but compaction rebuilds it to full coverage.
        store.compact_cache(fingerprint)
        loaded, rows = load(store, fingerprint, [target], "index")
        assert rows == {target: 777.0}
        assert store.last_load_stats["index_fallback_shards"] == 0
        assert store.last_load_stats["index_hits"] == 1


class TestReadPathEquivalence:
    """The property battery: whatever mess the write history left,
    every read mode returns exactly what full replay returns."""

    @pytest.mark.parametrize("seed", range(10))
    def test_read_paths_bit_identical_under_fuzz(self, tmp_path,
                                                 fingerprint, seed):
        rng = random.Random(seed)
        store = RuntimeStore(tmp_path / "store",
                             shards=rng.choice([1, 2, 4, 8]),
                             auto_compact_segments=None)
        expected = {}
        for _ in range(rng.randint(3, 8)):
            cache = IndicatorCache()
            for _ in range(rng.randint(1, 30)):
                k = key(rng.randint(0, 40))
                v = float(rng.randint(0, 1000))
                cache.put(k, v)
                expected[k] = v
            store.save_cache(cache, fingerprint)
            directory = store.cache_dir(fingerprint)
            action = rng.random()
            if action < 0.25:
                store.compact_cache(fingerprint)
            elif action < 0.45:
                segments = sorted(
                    directory.glob("shard-*.seg-*.jsonl"))
                if segments:  # a crashed writer's torn segment tail
                    with open(rng.choice(segments), "a") as handle:
                        handle.write('["torn')
            elif action < 0.65:
                sidecars = sorted(directory.glob("shard-*.idx.json"))
                if sidecars:  # missing or torn index sidecar
                    path = rng.choice(sidecars)
                    if rng.random() < 0.5:
                        path.unlink()
                    else:
                        with open(path, "a") as handle:
                            handle.write('{"garbage')
        population = [key(i) for i in rng.sample(range(60), 20)]
        want = {k: expected[k] for k in population if k in expected}
        results = {}
        for mode in ("full", "selective", "index"):
            loaded, rows = load(store, fingerprint, population, mode)
            assert loaded == len(want), (mode, seed)
            results[mode] = rows
        assert results["full"] == results["selective"] \
            == results["index"] == want, seed


class TestConcurrentReaders:
    def test_selective_and_index_reads_race_a_compactor(
            self, tmp_path, fingerprint):
        """A churning writer+compactor must never make a concurrent
        selective/index load miss a row or see a wrong value: appends
        hold the shard flock, compaction holds base + every shard lock,
        loads replay under the shared base lock, and a mid-churn index
        is either fresh (covers match) or ignored."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        store = RuntimeStore(tmp_path / "store", shards=4,
                             auto_compact_segments=None)
        fill(store, fingerprint, 0, 40)
        population = [key(i) for i in range(0, 40, 5)]
        want = {key(i): float(i) * 1.5 for i in range(0, 40, 5)}

        context = multiprocessing.get_context("fork")
        stop = context.Event()

        def churn():
            while not stop.is_set():
                refresh = IndicatorCache()
                refresh.put(key(0), 0.0)  # same value: reads stay stable
                store.save_cache(refresh, fingerprint)
                store.compact_cache(fingerprint)

        process = context.Process(target=churn)
        process.start()
        try:
            for _ in range(25):
                for mode in ("selective", "index"):
                    loaded, rows = load(store, fingerprint, population,
                                        mode)
                    assert loaded == len(population), mode
                    assert rows == want, mode
        finally:
            stop.set()
            process.join(timeout=30)
        assert process.exitcode == 0

    def test_two_writers_and_an_index_reader_drop_nothing(
            self, tmp_path, fingerprint):
        """Two processes flushing into the same single shard while a
        third reads through the index: every mid-race read is
        internally consistent, and after the writers join all three
        read modes agree on the full row set — no lost rows, no
        duplicates, no torn values."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=None)
        rows_per_writer = 15
        all_keys = [("w", wid, row) for wid in (1, 2)
                    for row in range(rows_per_writer)]
        want = {k: float(k[1] * 1000 + k[2]) for k in all_keys}

        def writer(writer_id):
            for row in range(rows_per_writer):
                cache = IndicatorCache()
                cache.put(("w", writer_id, row),
                          float(writer_id * 1000 + row))
                store.save_cache(cache, fingerprint)
                time.sleep(0.001)

        context = multiprocessing.get_context("fork")
        processes = [context.Process(target=writer, args=(writer_id,))
                     for writer_id in (1, 2)]
        for process in processes:
            process.start()
        deadline = time.time() + 30
        while (any(p.is_alive() for p in processes)
               and time.time() < deadline):
            target = IndicatorCache()
            store.load_cache_into(target, fingerprint, keys=all_keys,
                                  read_mode="index")
            for k, v in target.items():
                assert v == want[k]  # never torn, never misattributed
        for process in processes:
            process.join(timeout=30)
            assert process.exitcode == 0
        for mode in ("full", "selective", "index"):
            loaded, rows = load(store, fingerprint, all_keys, mode)
            assert loaded == len(want), mode
            assert rows == want, mode


class TestIndexTailCompaction:
    """Satellite: the index-aware auto-compaction trigger — a growing
    unsorted index tail (bisect can't serve it; every lookup scans it)
    re-compacts the shard even when segment count/bytes look healthy."""

    def test_tail_growth_triggers_compaction(self, tmp_path, fingerprint):
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=10_000,
                             auto_compact_index_tail=4)
        for i in range(6):
            fill(store, fingerprint, i, 1)
        directory = store.cache_dir(fingerprint)
        # Tail crossed the bound mid-way, so the shard was rebuilt:
        # strictly fewer live segments than flushes, and the index tail
        # is short again.
        segments = list(directory.glob("shard-*.seg-*.jsonl"))
        assert len(segments) < 6
        state = store._read_index_state(directory, 0)
        assert state is not None
        assert state["tail_records"] <= 4
        # Rows all survive, through every read mode.
        for mode in ("full", "selective", "index"):
            loaded, rows = load(store, fingerprint,
                                [key(i) for i in range(6)], mode)
            assert loaded == 6, mode
            assert rows == {key(i): float(i) * 1.5 for i in range(6)}

    def test_disabled_auto_compaction_disables_tail_trigger(
            self, tmp_path, fingerprint):
        """``auto_compact_segments=None`` means *no* auto-compaction —
        the index-tail trigger must respect it (benchmarks rely on
        this to measure uncompacted layouts)."""
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=None,
                             auto_compact_index_tail=1)
        for i in range(5):
            fill(store, fingerprint, i, 1)
        directory = store.cache_dir(fingerprint)
        assert len(list(directory.glob("shard-*.seg-*.jsonl"))) == 5

    def test_tail_bound_none_keeps_legacy_triggers_only(
            self, tmp_path, fingerprint):
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=10_000,
                             auto_compact_index_tail=None)
        for i in range(8):
            fill(store, fingerprint, i, 1)
        directory = store.cache_dir(fingerprint)
        assert len(list(directory.glob("shard-*.seg-*.jsonl"))) == 8


class TestIndexFilters:
    """Satellite: the compaction-built per-shard fence + bloom filter —
    index-mode misses skip the bisect entirely, and the skips are
    counted in ``last_load_stats['index_filtered']``."""

    def test_misses_are_filtered_without_bisect(self, store, fingerprint):
        fill(store, fingerprint, 0, 32)
        store.compact_cache(fingerprint)
        missing = [key(i) for i in range(1000, 1050)]
        loaded, rows = load(store, fingerprint, missing, "index")
        assert loaded == 0 and rows == {}
        stats = store.last_load_stats
        # Nearly every miss is answered by fence/bloom (two hash
        # probes) instead of a binary search of the sorted region; the
        # occasional bloom false positive just falls through to the
        # bisect, which still answers "absent" correctly.
        assert stats["index_filtered"] >= int(0.8 * len(missing))
        assert stats["index_fallback_shards"] == 0

    def test_present_keys_never_filtered(self, store, fingerprint):
        fill(store, fingerprint, 0, 32)
        store.compact_cache(fingerprint)
        population = [key(i) for i in range(32)]
        loaded, rows = load(store, fingerprint, population, "index")
        assert loaded == 32
        assert store.last_load_stats["index_filtered"] == 0
        assert rows == {key(i): float(i) * 1.5 for i in range(32)}

    def test_filters_only_guard_the_sorted_region(self, store,
                                                  fingerprint):
        """Rows appended after compaction live in the index tail; the
        filters know nothing about them and must not reject them."""
        fill(store, fingerprint, 0, 16)
        store.compact_cache(fingerprint)
        fill(store, fingerprint, 500, 4)  # tail rows, outside the fence
        population = [key(i) for i in (3, 500, 501, 502, 503)]
        loaded, rows = load(store, fingerprint, population, "index")
        assert loaded == 5
        assert rows[key(500)] == 750.0

    def test_malformed_filters_degrade_to_bisect(self, store,
                                                 fingerprint):
        """A corrupt fence/bloom header is treated as *absent* — lookups
        fall back to the bisect, never to a wrong answer or a stale
        index."""
        fill(store, fingerprint, 0, 16)
        store.compact_cache(fingerprint)
        directory = store.cache_dir(fingerprint)
        for path in directory.glob("shard-*.idx.json"):
            lines = path.read_text(encoding="utf-8").splitlines(True)
            header = json.loads(lines[0])
            header["fence"] = "garbage"
            header["bloom"] = [0, "nothex!"]
            lines[0] = json.dumps(header) + "\n"
            # Keep the header's byte length irrelevant: rewrite whole
            # sidecar (this is a test-only surgery, not an append).
            path.write_text("".join(lines), encoding="utf-8")
        population = [key(i) for i in range(16)] + [key(999)]
        loaded, rows = load(store, fingerprint, population, "index")
        assert loaded == 16
        assert rows == {key(i): float(i) * 1.5 for i in range(16)}
        assert store.last_load_stats["index_filtered"] == 0

    def test_filtered_misses_counted_in_telemetry(self, tmp_path,
                                                  fingerprint):
        from repro.runtime.telemetry import Telemetry

        telemetry = Telemetry.armed()
        store = RuntimeStore(tmp_path / "store", shards=4,
                             auto_compact_segments=None,
                             telemetry=telemetry)
        fill(store, fingerprint, 0, 16)
        store.compact_cache(fingerprint)
        load(store, fingerprint, [key(i) for i in range(900, 910)],
             "index")
        snapshot = telemetry.metrics_snapshot()
        assert snapshot["counters"]["store.index_filtered"] == 10


class TestHarnessReadModes:
    def test_harness_warm_starts_through_every_read_mode(self, tmp_path):
        from repro.runtime import RunHarness, RuntimeConfig

        store_dir = str(tmp_path / "store")
        cold = RunHarness(RuntimeConfig(
            algorithm="random", samples=6, seed=3, fast=True,
            store_dir=store_dir)).run()
        assert cold.store["cache_saved"] > 0
        assert cold.store["read_mode"] == "full"
        for mode in ("selective", "index"):
            warm = RunHarness(RuntimeConfig(
                algorithm="random", samples=6, seed=3, fast=True,
                store_dir=store_dir, store_read_mode=mode)).run()
            assert warm.store["read_mode"] == mode
            assert warm.cache["misses"] == 0
            assert warm.cache["warm_start_entries"] > 0
            assert warm.arch_str == cold.arch_str
            assert warm.indicators == cold.indicators

    def test_harness_rejects_unknown_read_mode(self):
        from repro.errors import SearchError
        from repro.runtime import RunHarness, RuntimeConfig

        with pytest.raises(SearchError):
            RunHarness(RuntimeConfig(algorithm="random", samples=2,
                                     fast=True,
                                     store_read_mode="psychic"))
