"""Pool-evaluated populations are bit-identical to serial evaluation."""

import random

import numpy as np
import pytest

from repro.engine import Engine, supernet_state_key
from repro.errors import SearchError
from repro.runtime.pool import (
    PopulationExecutor,
    _chunked,
    _evaluate_genotype_chunk,
    _evaluate_supernet_chunk,
)
from repro.search.objective import HybridObjective
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS
from repro.searchspace.space import NasBench201Space


@pytest.fixture()
def population():
    space = NasBench201Space()
    sample = space.sample(8, rng=21)
    return sample + sample[:3]  # duplicates exercise canonical dedupe


def _engine(tiny_proxy_config):
    return Engine(proxy_config=tiny_proxy_config)


class ShuffledFakeExecutor:
    """Computes the same worker chunks but merges in shuffled completion
    order — models a pool whose workers finish in arbitrary order."""

    def __init__(self, chunk_size=2, seed=0):
        self.inner = PopulationExecutor(n_workers=1, chunk_size=chunk_size)
        self.seed = seed

    def _shuffled(self, fn, payloads):
        results = [fn(p) for p in payloads]
        order = list(range(len(results)))
        random.Random(self.seed).shuffle(order)
        return [results[i] for i in order]

    def warm_population(self, engine, genotypes, with_latency=False):
        self.inner._run_chunks = self._shuffled_run
        return self.inner.warm_population(engine, genotypes,
                                          with_latency=with_latency)

    def warm_supernets(self, engine, spec_lists):
        self.inner._run_chunks = self._shuffled_run
        return self.inner.warm_supernets(engine, spec_lists)

    def _shuffled_run(self, fn, payloads):
        return self._shuffled(fn, payloads)


class TestBitIdentical:
    def test_fork_pool_matches_serial(self, tiny_proxy_config, population):
        serial = _engine(tiny_proxy_config).evaluate_population(population)
        executor = PopulationExecutor(n_workers=2, chunk_size=3)
        pooled = _engine(tiny_proxy_config).evaluate_population(
            population, executor=executor
        )
        assert executor.stats.mode == "fork-pool"
        assert executor.stats.tasks == serial.unique_canonical
        for name in serial.columns:
            np.testing.assert_array_equal(serial.columns[name],
                                          pooled.columns[name])
        assert [g.to_index() for g in serial.genotypes] == \
            [g.to_index() for g in pooled.genotypes]

    def test_shuffled_completion_order_identical_table(self,
                                                       tiny_proxy_config,
                                                       population):
        serial = _engine(tiny_proxy_config).evaluate_population(population)
        for seed in (1, 2, 3):
            shuffled = _engine(tiny_proxy_config).evaluate_population(
                population, executor=ShuffledFakeExecutor(seed=seed)
            )
            assert shuffled.unique_canonical == serial.unique_canonical
            for name in serial.columns:
                np.testing.assert_array_equal(serial.columns[name],
                                              shuffled.columns[name])

    def test_supernet_rows_match_serial(self, tiny_proxy_config):
        base = [EdgeSpec(i, tuple(CANDIDATE_OPS)) for i in range(6)]
        states = [[base[0].without(op)] + base[1:]
                  for op in CANDIDATE_OPS[:3]]
        serial_obj = HybridObjective(engine=_engine(tiny_proxy_config))
        serial_rows = serial_obj.supernet_population(states)
        for executor in (PopulationExecutor(n_workers=2, chunk_size=1),
                         ShuffledFakeExecutor(chunk_size=1, seed=9)):
            pooled_obj = HybridObjective(engine=_engine(tiny_proxy_config),
                                         executor=executor)
            assert pooled_obj.supernet_population(states) == serial_rows

    def test_search_loop_executor_hook(self, tiny_proxy_config):
        from repro.search.random_search import ZeroShotRandomSearch

        serial = ZeroShotRandomSearch(
            HybridObjective(engine=_engine(tiny_proxy_config)),
            num_samples=6, seed=4,
        ).search()
        executor = PopulationExecutor(n_workers=2, chunk_size=2)
        pooled = ZeroShotRandomSearch(
            HybridObjective(engine=_engine(tiny_proxy_config)),
            num_samples=6, seed=4, executor=executor,
        ).search()
        assert pooled.genotype == serial.genotype
        assert executor.stats.merged_rows > 0


class TestIncrementalMergeHook:
    """Engine.merge_indicator_rows: the seam every executor merges through."""

    def test_first_write_wins_and_counts_misses(self, tiny_proxy_config):
        engine = _engine(tiny_proxy_config)
        key = ("flops", 123, ("macro",))
        assert engine.merge_indicator_rows([(key, 7.0)]) == 1
        assert engine.cache.get(key) == 7.0
        assert engine.cache.misses == 1
        # A duplicate (re-ordered / double-delivered chunk) changes nothing.
        assert engine.merge_indicator_rows([(key, 99.0)]) == 0
        assert engine.cache.get(key) == 7.0
        assert engine.cache.misses == 1

    def test_pool_merge_delegates_to_engine_hook(self, tiny_proxy_config,
                                                 heavy_genotype):
        engine = _engine(tiny_proxy_config)
        executor = PopulationExecutor(n_workers=1, chunk_size=2)
        merged = executor.warm_population(engine, [heavy_genotype])
        assert merged == 3  # ntk + linear_regions + flops
        assert executor.stats.merged_rows == 3
        assert engine.cache.misses == 3


class TestDispatchMechanics:
    def test_serial_fallback_single_worker(self, tiny_proxy_config,
                                           population):
        executor = PopulationExecutor(n_workers=1, chunk_size=4)
        _engine(tiny_proxy_config).evaluate_population(population,
                                                       executor=executor)
        assert executor.stats.mode == "serial"

    def test_serial_fallback_single_chunk(self, tiny_proxy_config,
                                          population):
        executor = PopulationExecutor(n_workers=4, chunk_size=64)
        _engine(tiny_proxy_config).evaluate_population(population,
                                                       executor=executor)
        assert executor.stats.mode == "serial"
        assert executor.stats.chunks == 1

    def test_partially_warm_cache_skips_cached_indicators(
        self, tiny_proxy_config, heavy_genotype
    ):
        engine = _engine(tiny_proxy_config)
        engine.ntk(heavy_genotype)
        engine.linear_regions(heavy_genotype)
        # Only FLOPs missing: the worker must not re-pay the proxies.
        rows, _ = _evaluate_genotype_chunk(
            (((heavy_genotype.ops, (False, False, True)),),
             tiny_proxy_config, engine.macro_config)
        )
        assert set(rows[0][1]) == {"flops"}
        executor = PopulationExecutor(n_workers=1, chunk_size=2)
        merged = executor.warm_population(engine, [heavy_genotype])
        assert merged == 1  # flops row only
        table = engine.evaluate_population([heavy_genotype])
        assert table.cache_misses == 0

    def test_warm_cache_dispatches_nothing(self, tiny_proxy_config,
                                           population):
        engine = _engine(tiny_proxy_config)
        engine.evaluate_population(population)
        executor = PopulationExecutor(n_workers=2, chunk_size=2)
        engine.evaluate_population(population, executor=executor)
        assert executor.stats.dispatches == 0
        assert executor.stats.tasks == 0

    def test_chunking_covers_everything_once(self):
        items = list(range(10))
        chunks = _chunked(items, 3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [x for chunk in chunks for x in chunk] == items

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SearchError):
            PopulationExecutor(n_workers=0)
        with pytest.raises(SearchError):
            PopulationExecutor(chunk_size=0)

    def test_worker_chunk_functions_round_trip(self, tiny_proxy_config,
                                               tiny_macro_config,
                                               heavy_genotype):
        rows, seconds = _evaluate_genotype_chunk(
            (((heavy_genotype.ops, (True, True, True)),),
             tiny_proxy_config, tiny_macro_config)
        )
        engine = Engine(proxy_config=tiny_proxy_config,
                        macro_config=tiny_macro_config)
        assert rows[0][0] == heavy_genotype.to_index()
        assert rows[0][1]["ntk"] == engine.ntk(heavy_genotype)
        assert seconds >= 0.0

        specs = [EdgeSpec(i, tuple(CANDIDATE_OPS)) for i in range(6)]
        state = supernet_state_key(specs)
        srows, _ = _evaluate_supernet_chunk(
            (((state, (True, True)),), tiny_proxy_config)
        )
        assert srows[0][0] == state
        assert srows[0][1]["supernet_ntk"] == engine.supernet_ntk(specs)
        partial, _ = _evaluate_supernet_chunk(
            (((state, (False, True)),), tiny_proxy_config)
        )
        assert set(partial[0][1]) == {"supernet_lr"}
