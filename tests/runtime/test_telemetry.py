"""Telemetry is a strict observer: spans/metrics record, results don't change.

Covers the tracing substrate (spans, Chrome export), the metrics
registry, the cross-process worker log, the run-scoped ``Telemetry``
facade, executor/harness integration (trace files, run ids, drain), the
heartbeat, and the schema-stability contracts downstream report readers
rely on.
"""

import json
import re

import numpy as np
import pytest

from repro.engine import Engine
from repro.runtime import RunHarness, RuntimeConfig
from repro.runtime.async_pool import AsyncPoolStats, AsyncPopulationExecutor
from repro.runtime.telemetry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Heartbeat,
    Histogram,
    MetricsRegistry,
    Telemetry,
    TelemetryLog,
    TracedWorker,
    load_trace,
    span_coverage,
    summarize_trace,
)
from repro.searchspace.space import NasBench201Space
from repro.runtime.tracing import (
    CAT_DISPATCH,
    CAT_GATHER,
    CAT_MERGE,
    CAT_WORKER,
    NULL_SPAN,
    Tracer,
    write_chrome_trace,
)

pytestmark = pytest.mark.obs


def _quick_config(**overrides):
    defaults = dict(algorithm="random", samples=6, seed=3, fast=True)
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


# ----------------------------------------------------------------------
# Tracing substrate
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_name_cat_args_and_duration(self):
        tracer = Tracer()
        with tracer.span("merge", CAT_MERGE, {"chunk": 3}) as span:
            span.note(rows=8)
        (event,) = tracer.events()
        assert event["name"] == "merge"
        assert event["cat"] == CAT_MERGE
        assert event["args"] == {"chunk": 3, "rows": 8}
        assert event["dur"] >= 0.0
        assert event["pid"] == tracer.pid

    def test_span_records_on_exception_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("dispatch", CAT_DISPATCH):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event["args"]["error"] == "ValueError"

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.note(anything=1)  # discarded, no error
        assert span is NULL_SPAN

    def test_chrome_events_use_integer_microseconds_and_run_id(self):
        tracer = Tracer()
        tracer.record("gather", CAT_GATHER, ts=10.0, duration=0.25)
        events = tracer.chrome_events(run_id="cafe0123")
        complete = [e for e in events if e.get("ph") == "X"]
        (event,) = complete
        assert event["ts"] == 10_000_000
        assert event["dur"] == 250_000
        assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
        assert event["args"]["run_id"] == "cafe0123"
        # Metadata events label every pid track.
        meta = [e for e in events if e.get("ph") == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_chrome_events_label_worker_tracks(self):
        tracer = Tracer()
        tracer.record("worker_compute", CAT_WORKER, ts=1.0, duration=0.1,
                      pid=tracer.pid + 1, tid=1)
        labels = [e["args"]["name"] for e in tracer.chrome_events()
                  if e.get("ph") == "M"]
        assert any(label.startswith("micronas-worker") for label in labels)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.record("flush", "store", ts=5.0, duration=0.01)
        path = write_chrome_trace(tmp_path / "t.json",
                                  tracer.chrome_events("ab"),
                                  other_data={"run_id": "ab"})
        payload = load_trace(path)
        assert payload["otherData"]["run_id"] == "ab"
        assert payload["displayTimeUnit"] == "ms"
        assert any(e["name"] == "flush" for e in payload["traceEvents"])
        assert not list(tmp_path.glob("*.tmp"))  # atomic: no staging left

    def test_load_trace_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"events": []}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace(path)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_semantics(self):
        counter, gauge, histogram = Counter(), Gauge(), Histogram()
        counter.inc()
        counter.inc(4)
        gauge.set(3)
        gauge.set(7.5)
        for value in (0.003, 0.003, 2.0, 999.0):
            histogram.observe(value)
        assert counter.value == 5
        assert gauge.value == 7.5
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(0.003 + 0.003 + 2.0 + 999.0)
        # 0.003 x2 -> the 0.005 bucket; 2.0 -> the 5.0 bucket;
        # 999 -> overflow (the extra trailing slot).
        assert len(snap["counts"]) == len(DEFAULT_BUCKETS) + 1
        assert snap["counts"][DEFAULT_BUCKETS.index(0.005)] == 2
        assert snap["counts"][DEFAULT_BUCKETS.index(5.0)] == 1
        assert snap["counts"][-1] == 1

    def test_registry_reuses_instruments_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.2)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_record_folds_worker_side_records(self):
        registry = MetricsRegistry()
        registry.counter("worker.chunks").inc()
        registry.merge_record({
            "counters": {"worker.chunks": 2, "worker.rows": 7},
            "gauges": {"depth": 3},
            "observations": {"worker_chunk_seconds": [0.2, 0.4]},
        })
        snap = registry.snapshot()
        assert snap["counters"] == {"worker.chunks": 3, "worker.rows": 7}
        assert snap["gauges"] == {"depth": 3.0}
        assert snap["histograms"]["worker_chunk_seconds"]["count"] == 2


# ----------------------------------------------------------------------
# Cross-process worker log
# ----------------------------------------------------------------------
class TestTelemetryLog:
    def test_append_read_round_trip(self, tmp_path):
        log = TelemetryLog(tmp_path / "w.jsonl")
        log.append({"kind": "metrics", "counters": {"x": 1}})
        log.append({"kind": "span", "name": "worker_compute"})
        records = log.read()
        assert [r["kind"] for r in records] == ["metrics", "span"]

    def test_torn_tail_line_is_skipped_not_fatal(self, tmp_path):
        log = TelemetryLog(tmp_path / "w.jsonl")
        log.append({"kind": "metrics", "counters": {"x": 1}})
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "name": "worker_co')  # killed writer
        records = log.read()
        assert len(records) == 1
        assert records[0]["kind"] == "metrics"

    def test_read_missing_file_is_empty(self, tmp_path):
        assert TelemetryLog(tmp_path / "absent.jsonl").read() == []


class TestTracedWorker:
    def test_result_passes_through_bit_identical(self, tmp_path):
        rows = [("key", np.arange(4, dtype=np.float64))]

        def inner(payload):
            return rows, 0.125

        worker = TracedWorker(str(tmp_path / "w.jsonl"), inner, chunk=7,
                              run_id="ab")
        result = worker("payload")
        assert result[0] is rows  # the very same object, untouched
        assert result[1] == 0.125

    def test_records_span_and_metrics(self, tmp_path):
        worker = TracedWorker(str(tmp_path / "w.jsonl"),
                              lambda payload: ([1, 2, 3], 0.5), chunk=7)
        worker(None)
        records = TelemetryLog(tmp_path / "w.jsonl").read()
        span = next(r for r in records if r["kind"] == "span")
        metrics = next(r for r in records if r["kind"] == "metrics")
        assert span["name"] == "worker_compute"
        assert span["cat"] == CAT_WORKER
        assert span["args"]["chunk"] == 7
        assert span["args"]["rows"] == 3
        assert metrics["counters"] == {"worker.chunks": 1, "worker.rows": 3}
        assert metrics["observations"]["worker_chunk_seconds"]

    def test_raising_inner_logs_error_and_reraises(self, tmp_path):
        def inner(payload):
            raise RuntimeError("poison")

        worker = TracedWorker(str(tmp_path / "w.jsonl"), inner, chunk=1)
        with pytest.raises(RuntimeError):
            worker(None)
        (span,) = TelemetryLog(tmp_path / "w.jsonl").read()
        assert span["args"]["error"] == "RuntimeError"


# ----------------------------------------------------------------------
# The run-scoped facade
# ----------------------------------------------------------------------
class TestTelemetryFacade:
    def test_disabled_is_a_shared_no_op(self):
        tel = Telemetry.disabled()
        assert tel is Telemetry.disabled()
        assert not tel.enabled
        assert tel.span("anything") is NULL_SPAN
        worker = object()
        assert tel.wrap_worker(worker) is worker
        tel.count("c")
        tel.gauge("g", 1)
        tel.observe("h", 1)  # all silently dropped
        assert tel.metrics_snapshot() == {"counters": {}, "gauges": {},
                                          "histograms": {}}

    def test_armed_records_spans_and_metrics(self):
        tel = Telemetry.armed(run_id="ab")
        with tel.span("dispatch", CAT_DISPATCH, chunk=0):
            pass
        tel.count("executor.evals", 3)
        tel.observe("chunk_seconds", 0.2)
        assert len(tel.tracer) == 1
        snap = tel.metrics_snapshot()
        assert snap["counters"]["executor.evals"] == 3
        assert snap["histograms"]["chunk_seconds"]["count"] == 1

    def test_drain_worker_log_is_idempotent_and_consumes_sidecar(
            self, tmp_path):
        trace = tmp_path / "t.json"
        tel = Telemetry.armed(run_id="ab", trace_path=trace)
        tel.wrap_worker(lambda payload: ([1], 0.1), chunk=0)(None)
        assert tel.worker_log.path.exists()
        first = tel.drain_worker_log()
        assert first == 2  # one span + one metrics record
        assert not tel.worker_log.path.exists()
        assert tel.drain_worker_log() == 0  # idempotent
        names = [e["name"] for e in tel.tracer.events()]
        assert names == ["worker_compute"]
        assert tel.metrics_snapshot()["counters"]["worker.chunks"] == 1

    def test_export_payload_shape(self, tmp_path):
        tel = Telemetry.armed(run_id="ab", trace_path=tmp_path / "t.json")
        with tel.span("gather", CAT_GATHER):
            pass
        payload = tel.export(other_data={"extra": 1})
        assert set(payload) == {"traceEvents", "displayTimeUnit",
                                "otherData"}
        assert payload["otherData"]["run_id"] == "ab"
        assert payload["otherData"]["extra"] == 1
        assert "metrics" in payload["otherData"]

    def test_write_trace_only_when_armed_with_path(self, tmp_path):
        assert Telemetry.disabled().write_trace() is None
        assert Telemetry.armed(run_id="x").write_trace() is None
        tel = Telemetry.armed(run_id="x", trace_path=tmp_path / "t.json")
        path = tel.write_trace()
        assert path is not None and path.exists()
        load_trace(path)  # well-formed


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
class TestExecutorTelemetry:
    def test_async_executor_spans_correlate_by_chunk_id(
            self, tiny_proxy_config, tmp_path):
        tel = Telemetry.armed(run_id="ab", trace_path=tmp_path / "t.json")
        engine = Engine(proxy_config=tiny_proxy_config)
        population = NasBench201Space().sample(6, rng=5)
        with AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                     mode="serial",
                                     telemetry=tel) as executor:
            executor.submit_population(engine, population)
            while executor.num_pending:
                executor.gather(1)
        tel.drain_worker_log()
        events = tel.tracer.events()
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        assert set(by_name) >= {"dispatch", "gather", "merge",
                                "worker_compute"}
        # chunk ids tie a dispatch to its worker compute and its merge.
        dispatched = {e["args"]["chunk"] for e in by_name["dispatch"]}
        computed = {e["args"]["chunk"] for e in by_name["worker_compute"]}
        merged = {e["args"]["chunk"] for e in by_name["merge"]}
        assert dispatched == computed == merged
        assert len(dispatched) == len(by_name["dispatch"])
        snap = tel.metrics_snapshot()
        assert snap["counters"]["executor.evals"] > 0
        assert snap["histograms"]["chunk_seconds"]["count"] >= 1

    def test_results_identical_with_and_without_telemetry(
            self, tiny_proxy_config, tmp_path):
        population = NasBench201Space().sample(6, rng=5)

        def run(telemetry):
            engine = Engine(proxy_config=tiny_proxy_config)
            with AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                         mode="serial",
                                         telemetry=telemetry) as executor:
                executor.submit_population(engine, population)
                while executor.num_pending:
                    executor.gather(1)
            return engine.evaluate_population(population)

        plain = run(None)
        traced = run(Telemetry.armed(run_id="ab",
                                     trace_path=tmp_path / "t.json"))
        for name in plain.columns:
            assert np.array_equal(plain.columns[name], traced.columns[name])

    def test_dedupe_hits_counted(self, tiny_proxy_config):
        tel = Telemetry.armed(run_id="ab")
        engine = Engine(proxy_config=tiny_proxy_config)
        (genotype,) = NasBench201Space().sample(1, rng=9)
        with AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                     mode="serial",
                                     telemetry=tel) as executor:
            assert executor.submit_population(engine, [genotype]) == 1
            # The same candidate while its chunk is still in flight:
            # deduped at submit, not shipped again.
            assert executor.submit_population(engine, [genotype]) == 0
            assert executor.stats.dedupe_hits == 1
            while executor.num_pending:
                executor.gather(1)
        assert tel.metrics_snapshot()["counters"]["executor.dedupe_hits"] == 1


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------
class TestHarnessTelemetry:
    def test_run_id_and_utc_timestamps_in_report(self):
        report = RunHarness(_quick_config()).run()
        assert re.fullmatch(r"[0-9a-f]{8}", report.run_id)
        assert report.started_at.endswith("+00:00")
        assert report.finished_at.endswith("+00:00")
        assert report.started_at <= report.finished_at  # ISO sorts
        assert report.telemetry is None  # not armed by default

    def test_run_ids_are_distinct_per_harness(self):
        config = _quick_config()
        assert RunHarness(config).run_id != RunHarness(config).run_id

    def test_traced_run_writes_valid_chrome_trace(self, tmp_path):
        trace = tmp_path / "run.json"
        report = RunHarness(_quick_config(
            async_mode=True, trace_path=str(trace))).run()
        payload = load_trace(trace)
        assert payload["otherData"]["run_id"] == report.run_id
        assert payload["otherData"]["interrupted"] is False
        names = {e["name"] for e in payload["traceEvents"]
                 if e.get("ph") == "X"}
        assert names >= {"dispatch", "gather", "merge",
                         "evaluate_population"}
        assert report.telemetry is not None
        assert report.telemetry["counters"]["executor.evals"] > 0
        summary = summarize_trace(payload)
        assert summary["coverage"] > 0.5
        assert {p["name"] for p in summary["phases"]} >= {"dispatch",
                                                          "gather"}

    def test_drain_interrupted_run_still_writes_well_formed_trace(
            self, tmp_path):
        trace = tmp_path / "run.json"
        harness = RunHarness(_quick_config(
            algorithm="steady-state", async_mode=True, population_size=4,
            cycles=40, trace_path=str(trace)))

        def hook(gathered):
            # What the SIGINT/SIGTERM handler does, minus the signal.
            harness._drain_requested = True
            harness.executor.request_drain()

        harness.executor.on_gather = hook
        report = harness.run()
        assert report.status == "interrupted"
        payload = load_trace(trace)
        assert payload["otherData"]["interrupted"] is True
        assert summarize_trace(payload)["n_spans"] > 0

    def test_heartbeat_config_emits_progress_lines(self, capsys):
        report = RunHarness(_quick_config(heartbeat=0.01,
                                          async_mode=True)).run()
        # The harness armed telemetry for the heartbeat even with no
        # trace path, so the metrics snapshot rides in the report.
        assert report.telemetry is not None


# ----------------------------------------------------------------------
# Schema stability: downstream readers parse these dicts
# ----------------------------------------------------------------------
class TestReportSchemas:
    def test_async_pool_stats_to_dict_keys_are_pinned(self):
        expected = ["mode", "n_workers", "dispatches", "chunks", "gathers",
                    "flushes", "tasks", "merged_rows", "dedupe_hits",
                    "retries", "timeouts", "respawns", "quarantined",
                    "worker_seconds", "idle_fraction", "span_seconds"]
        assert list(AsyncPoolStats().to_dict()) == expected

    def test_async_pool_stats_idle_fraction_defaults_to_none(self):
        assert AsyncPoolStats().to_dict()["idle_fraction"] is None

    def test_run_report_dict_carries_identity_fields(self, tmp_path):
        report = RunHarness(_quick_config()).run()
        payload = report.to_dict()
        for key in ("run_id", "started_at", "finished_at", "status",
                    "telemetry", "config", "pool", "cache", "store",
                    "indicators", "wall_seconds"):
            assert key in payload
        path = tmp_path / "report.json"
        report.save_json(str(path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["run_id"] == report.run_id
        assert loaded["config"]["trace_path"] is None
        assert loaded["config"]["heartbeat"] is None


# ----------------------------------------------------------------------
# Heartbeat
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_beat_line_format_and_rate(self):
        readings = iter([
            {"evals": 0, "in_flight": 2, "idle_fraction": None,
             "retries": 0, "store_rows": 0},
            {"evals": 10, "in_flight": 1, "idle_fraction": 0.25,
             "retries": 1, "store_rows": 32},
        ])
        lines = []
        heartbeat = Heartbeat(60.0, lambda: next(readings),
                              emit=lines.append, run_id="cafe0123")
        first = heartbeat.beat()
        second = heartbeat.beat()
        assert lines == [first, second]
        assert first.startswith("[run cafe0123] 0 evals (0.0/s)")
        assert "idle n/a" in first
        assert "| in-flight 1 |" in second
        assert "idle 25%" in second
        assert "retries 1" in second
        assert "store rows 32" in second
        assert float(re.search(r"\((\d+\.\d)/s\)", second).group(1)) > 0

    def test_thread_starts_beats_and_stops(self):
        import time

        lines = []
        heartbeat = Heartbeat(0.01, lambda: {"evals": 1},
                              emit=lines.append).start()
        for _ in range(500):
            if heartbeat.beats:
                break
            time.sleep(0.01)
        heartbeat.stop()
        assert heartbeat.beats >= 1
        assert lines
        stopped_at = heartbeat.beats
        time.sleep(0.05)
        assert heartbeat.beats == stopped_at  # no beats after stop()

    def test_a_raising_source_never_kills_the_thread(self):
        import time

        heartbeat = Heartbeat(0.001, lambda: 1 / 0).start()
        time.sleep(0.02)
        heartbeat.stop()  # joins cleanly: the loop swallowed the errors


# ----------------------------------------------------------------------
# Trace analysis + CLI surface
# ----------------------------------------------------------------------
def _payload(events):
    return {"traceEvents": events, "otherData": {"run_id": "ab"}}


def _event(name, cat, ts_s, dur_s):
    return {"name": name, "cat": cat, "ph": "X",
            "ts": int(ts_s * 1e6), "dur": int(dur_s * 1e6),
            "pid": 1, "tid": 1, "args": {}}


class TestTraceAnalysis:
    def test_span_coverage_unions_overlaps_and_sees_gaps(self):
        # [0,1] and [0.5,1.5] overlap -> union 1.5; window [0,2] with
        # [1.5,2] uncovered by the third span starting at 1.8.
        payload = _payload([
            _event("a", "x", 0.0, 1.0),
            _event("b", "y", 0.5, 1.0),
            _event("c", "x", 1.8, 0.2),
        ])
        assert span_coverage(payload) == pytest.approx(1.7 / 2.0)

    def test_span_coverage_empty_trace_is_zero(self):
        assert span_coverage(_payload([])) == 0.0

    def test_summarize_groups_by_phase_and_span_name(self):
        payload = _payload([
            _event("dispatch", "dispatch", 0.0, 0.2),
            _event("dispatch", "dispatch", 0.2, 0.2),
            _event("gather", "gather", 0.4, 1.6),
        ])
        summary = summarize_trace(payload)
        assert summary["run_id"] == "ab"
        assert summary["n_spans"] == 3
        assert summary["wall_seconds"] == pytest.approx(2.0)
        phases = {p["name"]: p for p in summary["phases"]}
        assert phases["dispatch"]["count"] == 2
        assert phases["dispatch"]["seconds"] == pytest.approx(0.4)
        assert phases["dispatch"]["share"] == pytest.approx(0.2)
        assert phases["gather"]["share"] == pytest.approx(0.8)
        # Sorted by descending time.
        assert summary["phases"][0]["name"] == "gather"

    def test_cli_trace_summarize(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "run.json"
        RunHarness(_quick_config(async_mode=True,
                                 trace_path=str(trace))).run()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span coverage" in out
        assert "gather" in out

    def test_cli_trace_summarize_rejects_garbage(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["trace", "summarize", str(path)])
