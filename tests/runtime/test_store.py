"""Store round-trips and fingerprint rejection."""

import json

import pytest

pytestmark = pytest.mark.store

from repro.engine import Engine, IndicatorCache
from repro.hardware.device import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.runtime.store import (
    RuntimeStore,
    StoreError,
    cache_fingerprint,
    _decode_key,
    _encode_key,
)
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space


@pytest.fixture()
def store(tmp_path):
    return RuntimeStore(tmp_path / "store")


class TestKeyCodec:
    def test_nested_tuples_round_trip(self):
        keys = [
            ("ntk", 123, 1, (4, 1, 8, 10, 8, 32, 4, 2, 1, 1, 7,
                             "batched", "batched")),
            ("supernet_ntk", (("none", "skip_connect"), ("nor_conv_3x3",)),
             (1, 2)),
            ("latency", 5, "nucleo-f746zg", "float32", (16, 5, 10, 3, 32)),
        ]
        for key in keys:
            assert _decode_key(json.loads(json.dumps(_encode_key(key)))) == key


class TestIndicatorCachePersistence:
    def test_round_trip_bit_identical(self, store, tiny_proxy_config):
        population = NasBench201Space().sample(6, rng=13)
        engine = Engine(proxy_config=tiny_proxy_config)
        table = engine.evaluate_population(population)
        fingerprint = cache_fingerprint(tiny_proxy_config, MacroConfig.full())
        written = store.save_cache(engine.cache, fingerprint)
        assert written == len(engine.cache)

        warm = Engine(proxy_config=tiny_proxy_config)
        loaded = store.load_cache_into(warm.cache, fingerprint)
        assert loaded == written
        warm_table = warm.evaluate_population(population)
        assert warm_table.cache_misses == 0
        for name in table.columns:
            assert list(table.columns[name]) == list(warm_table.columns[name])

    def test_nonfinite_values_survive(self, store):
        cache = IndicatorCache()
        cache.put(("ntk", 1, 1, ()), float("inf"))
        fingerprint = cache_fingerprint_default()
        store.save_cache(cache, fingerprint)
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint) == 1
        assert restored.get(("ntk", 1, 1, ())) == float("inf")

    def test_missing_file_loads_nothing(self, store):
        assert store.load_cache_into(IndicatorCache(),
                                     cache_fingerprint_default()) == 0
        assert "no persisted cache" in store.last_rejection

    def test_fingerprint_mismatch_rejected(self, store, tiny_proxy_config):
        fingerprint = cache_fingerprint(tiny_proxy_config, MacroConfig.full())
        cache = IndicatorCache()
        cache.put(("flops", 9, (16, 5, 10, 3, 32)), 1.0)
        store.save_cache(cache, fingerprint)

        # Different fingerprints key different files: a changed config
        # starts cold rather than reading (or clobbering) foreign data.
        stale = cache_fingerprint(tiny_proxy_config.with_seed(99),
                                  MacroConfig.full())
        target = IndicatorCache()
        assert store.load_cache_into(target, stale) == 0
        assert "no persisted cache" in store.last_rejection

        # A cache directory copied across fingerprint keys (or
        # hand-edited) is still rejected by the fingerprint embedded in
        # its meta/base payloads.
        import shutil

        shutil.copytree(store.cache_dir(fingerprint), store.cache_dir(stale))
        assert store.load_cache_into(target, stale) == 0
        assert len(target) == 0
        assert "fingerprint mismatch" in store.last_rejection
        with pytest.raises(StoreError):
            store.load_cache_into(target, stale, strict=True)

    def test_configs_coexist_in_one_store(self, store, tiny_proxy_config):
        first = cache_fingerprint(tiny_proxy_config, MacroConfig.full())
        second = cache_fingerprint(tiny_proxy_config.with_seed(99),
                                   MacroConfig.full())
        cache_a = IndicatorCache()
        cache_a.put(("flops", 1, (16,)), 1.0)
        cache_b = IndicatorCache()
        cache_b.put(("flops", 2, (16,)), 2.0)
        store.save_cache(cache_a, first)
        store.save_cache(cache_b, second)  # must not clobber `first`
        restored = IndicatorCache()
        assert store.load_cache_into(restored, first) == 1
        assert restored.get(("flops", 1, (16,))) == 1.0

    def test_macro_config_part_of_fingerprint(self, tiny_proxy_config):
        full = cache_fingerprint(tiny_proxy_config, MacroConfig.full())
        reduced = cache_fingerprint(tiny_proxy_config, MacroConfig.proxy())
        assert full != reduced

    def test_corrupt_file_rejected(self, store):
        fingerprint = cache_fingerprint_default()
        directory = store.cache_dir(fingerprint)
        directory.mkdir(parents=True)
        (directory / "base.json").write_text("{not json", encoding="utf-8")
        assert store.load_cache_into(IndicatorCache(), fingerprint) == 0
        assert "unreadable" in store.last_rejection
        with pytest.raises(StoreError):
            store.load_cache_into(IndicatorCache(), fingerprint,
                                  strict=True)

    def test_in_memory_entries_win_over_persisted(self, store):
        fingerprint = cache_fingerprint_default()
        cache = IndicatorCache()
        key = ("flops", 1, (4,))
        cache.put(key, 10.0)
        store.save_cache(cache, fingerprint)
        target = IndicatorCache()
        target.put(key, 99.0)
        assert store.load_cache_into(target, fingerprint) == 0
        assert target.get(key) == 99.0


def cache_fingerprint_default():
    from repro.proxies.base import ProxyConfig

    return cache_fingerprint(ProxyConfig(), MacroConfig.full())


class TestConcurrentWriters:
    """Two processes saving into one store directory lose nothing."""

    def test_merge_on_save_unions_disjoint_caches(self, store):
        fingerprint = cache_fingerprint_default()
        first = IndicatorCache()
        first.put(("flops", 1, (4,)), 1.0)
        second = IndicatorCache()
        second.put(("flops", 2, (4,)), 2.0)
        assert store.save_cache(first, fingerprint) == 1
        # The second save appends its own delta (returning only its own
        # row count) without clobbering the first writer's segments.
        assert store.save_cache(second, fingerprint) == 1
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint) == 2
        assert restored.get(("flops", 1, (4,))) == 1.0
        assert restored.get(("flops", 2, (4,))) == 2.0

    def test_in_memory_wins_on_collision(self, store):
        fingerprint = cache_fingerprint_default()
        stale = IndicatorCache()
        stale.put(("flops", 1, (4,)), 1.0)
        store.save_cache(stale, fingerprint)
        newer = IndicatorCache()
        newer.put(("flops", 1, (4,)), 99.0)
        store.save_cache(newer, fingerprint)
        restored = IndicatorCache()
        store.load_cache_into(restored, fingerprint)
        assert restored.get(("flops", 1, (4,))) == 99.0

    def test_corrupt_existing_base_rebuilt_from_memory(self, store):
        fingerprint = cache_fingerprint_default()
        directory = store.cache_dir(fingerprint)
        directory.mkdir(parents=True)
        (directory / "base.json").write_text("{torn", encoding="utf-8")
        cache = IndicatorCache()
        cache.put(("flops", 7, (4,)), 7.0)
        assert store.save_cache(cache, fingerprint) == 1
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint) == 1
        assert restored.get(("flops", 7, (4,))) == 7.0
        # Compaction discards the unreadable base and rebuilds it from
        # the surviving segments (the format-1 rebuild-from-memory
        # behaviour, now at the compaction layer).
        store.compact_cache(fingerprint)
        fresh = IndicatorCache()
        assert store.load_cache_into(fresh, fingerprint, strict=True) == 1

    def test_two_processes_racing_drop_no_rows(self, store):
        """Atomic-write property test: each forked writer repeatedly
        saves its own growing row set; the union must survive and the
        file must parse at every observation point."""
        import multiprocessing
        import time

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        fingerprint = cache_fingerprint_default()
        rows_per_writer = 8

        def writer(writer_id: int) -> None:
            cache = IndicatorCache()
            for row in range(rows_per_writer):
                cache.put(("ntk", writer_id * 1000 + row, 1, ()),
                          float(writer_id * 1000 + row))
                store.save_cache(cache, fingerprint)
                time.sleep(0.001)

        context = multiprocessing.get_context("fork")
        processes = [context.Process(target=writer, args=(writer_id,))
                     for writer_id in (1, 2)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        restored = IndicatorCache()
        loaded = store.load_cache_into(restored, fingerprint, strict=True)
        assert loaded == 2 * rows_per_writer
        for writer_id in (1, 2):
            for row in range(rows_per_writer):
                key = ("ntk", writer_id * 1000 + row, 1, ())
                assert restored.get(key) == float(writer_id * 1000 + row)


class TestLutStore:
    def test_round_trip_same_estimates(self, store, tiny_macro_config,
                                       heavy_genotype):
        first = LatencyEstimator(NUCLEO_F746ZG, config=tiny_macro_config,
                                 lut_store=store)
        assert not first.lut_from_store
        second = LatencyEstimator(NUCLEO_F746ZG, config=tiny_macro_config,
                                  lut_store=store)
        assert second.lut_from_store
        assert second.lut.entries == first.lut.entries
        assert second.lut.network_overhead_ms == first.lut.network_overhead_ms
        assert second.estimate_ms(heavy_genotype) == \
            first.estimate_ms(heavy_genotype)

    def test_keys_are_device_specific(self, store, tiny_macro_config):
        LatencyEstimator(NUCLEO_F746ZG, config=tiny_macro_config,
                         lut_store=store)
        assert store.lut_get(NUCLEO_F411RE.name, "float32",
                             tiny_macro_config) is None
        other = LatencyEstimator(NUCLEO_F411RE, config=tiny_macro_config,
                                 lut_store=store)
        assert not other.lut_from_store
        devices = sorted(meta["device"] for meta in store.lut_keys())
        assert devices == sorted([NUCLEO_F746ZG.name, NUCLEO_F411RE.name])

    def test_keys_are_precision_and_macro_specific(self, store,
                                                   tiny_macro_config):
        estimator = LatencyEstimator(NUCLEO_F746ZG, config=tiny_macro_config,
                                     lut_store=store)
        assert store.lut_get(NUCLEO_F746ZG.name, "int8",
                             tiny_macro_config) is None
        assert store.lut_get(NUCLEO_F746ZG.name, "float32",
                             MacroConfig.full()) is None
        assert store.lut_get(NUCLEO_F746ZG.name, "float32",
                             tiny_macro_config).entries == \
            estimator.lut.entries

    def test_tampered_meta_rejected(self, store, tiny_macro_config):
        LatencyEstimator(NUCLEO_F746ZG, config=tiny_macro_config,
                         lut_store=store)
        meta_path = next(store.root.glob("lut__*.meta.json"))
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["precision"] = "int8"
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        assert store.lut_get(NUCLEO_F746ZG.name, "float32",
                             tiny_macro_config) is None
        assert "mismatch" in store.last_rejection

    def test_engine_composes_store(self, store, tiny_proxy_config,
                                   tiny_macro_config, heavy_genotype):
        cold = Engine(proxy_config=tiny_proxy_config,
                      macro_config=tiny_macro_config, lut_store=store)
        cold_ms = cold.latency_ms(heavy_genotype)
        warm = Engine(proxy_config=tiny_proxy_config,
                      macro_config=tiny_macro_config, lut_store=store)
        assert warm.latency_estimator.lut_from_store
        assert warm.latency_ms(heavy_genotype) == cold_ms
