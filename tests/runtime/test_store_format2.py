"""Store format 2: append-only shards, compaction, migration, LUT keys.

The properties this file pins are the acceptance criteria of the sharded
store: saves append only the dirty delta, format-1 monoliths still load
and migrate on first save, compaction is idempotent and preserves
last-write-wins, concurrent appenders to one shard drop no rows, and
slug-colliding device names no longer clobber each other's LUTs.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine.cache import IndicatorCache
from repro.hardware.profiler import LatencyLUT
from repro.proxies.base import ProxyConfig
from repro.runtime.store import (
    RuntimeStore,
    StoreError,
    cache_fingerprint,
    _encode_key,
    _legacy_fingerprint,
)
from repro.searchspace.network import MacroConfig

pytestmark = pytest.mark.store


@pytest.fixture()
def store(tmp_path):
    return RuntimeStore(tmp_path / "store")


@pytest.fixture()
def fingerprint():
    return cache_fingerprint(ProxyConfig(), MacroConfig.full())


def key(i):
    return ("ntk", i, 1, ())


def write_format1_file(store, fingerprint, entries):
    """What the pre-sharding store wrote: one monolithic JSON file keyed
    by the format-1 fingerprint digest."""
    payload = {
        "fingerprint": _legacy_fingerprint(fingerprint),
        "entries": [[_encode_key(k), v] for k, v in entries.items()],
    }
    store.legacy_cache_path(fingerprint).write_text(
        json.dumps(payload) + "\n", encoding="utf-8"
    )


def segment_files(store, fingerprint):
    return store._segment_files(store.cache_dir(fingerprint))


class TestDirtyDelta:
    """save_cache cost tracks rows computed, not store size."""

    def test_save_appends_only_dirty_rows(self, store, fingerprint):
        cache = IndicatorCache()
        cache.put(key(1), 1.0)
        assert store.save_cache(cache, fingerprint) == 1
        # Nothing new since the last save: nothing appended, no new
        # segment files — the O(delta) property in its purest form.
        before = len(segment_files(store, fingerprint))
        assert store.save_cache(cache, fingerprint) == 0
        assert len(segment_files(store, fingerprint)) == before
        cache.put(key(2), 2.0)
        assert store.save_cache(cache, fingerprint) == 1

    def test_loaded_rows_are_marked_clean(self, store, fingerprint):
        writer = IndicatorCache()
        writer.put(key(1), 1.0)
        writer.put(key(2), 2.0)
        store.save_cache(writer, fingerprint)
        reader = IndicatorCache()
        assert store.load_cache_into(reader, fingerprint) == 2
        # Warm-started rows must not be re-appended by the next save.
        assert store.save_cache(reader, fingerprint) == 0
        reader.put(key(3), 3.0)
        assert store.save_cache(reader, fingerprint) == 1

    def test_unserialisable_rows_stay_dirty_and_are_skipped(
            self, store, fingerprint):
        cache = IndicatorCache()
        cache.put(key(1), 1.0)
        cache.put(("bad", 0), object())  # engine never produces this
        assert store.save_cache(cache, fingerprint) == 1
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint) == 1


class TestFormat1Compat:
    """Old monolithic files load, and the first save migrates them."""

    def test_format1_file_loads(self, store, fingerprint):
        write_format1_file(store, fingerprint, {key(1): 1.0, key(2): 2.0})
        cache = IndicatorCache()
        assert store.load_cache_into(cache, fingerprint, strict=True) == 2
        assert cache.get(key(1)) == 1.0

    def test_first_save_migrates_and_removes_legacy(self, store,
                                                    fingerprint):
        write_format1_file(store, fingerprint, {key(1): 1.0})
        cache = IndicatorCache()
        cache.put(key(2), 2.0)
        store.save_cache(cache, fingerprint)
        assert not store.legacy_cache_path(fingerprint).exists()
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint, strict=True) == 2
        assert restored.get(key(1)) == 1.0
        assert restored.get(key(2)) == 2.0

    def test_format2_rows_beat_migrated_legacy_rows(self, store,
                                                    fingerprint):
        # A row re-computed since the legacy file was written is newer:
        # the format-2 value must win both before and after migration.
        cache = IndicatorCache()
        cache.put(key(1), 99.0)
        store.save_cache(cache, fingerprint)
        write_format1_file(store, fingerprint, {key(1): 1.0})
        peek = IndicatorCache()
        store.load_cache_into(peek, fingerprint)
        assert peek.get(key(1)) == 99.0  # read-side: legacy is oldest
        store.compact_cache(fingerprint)  # migrates + folds
        assert not store.legacy_cache_path(fingerprint).exists()
        restored = IndicatorCache()
        store.load_cache_into(restored, fingerprint, strict=True)
        assert restored.get(key(1)) == 99.0

    def test_compact_all_migrates_legacy_files(self, store, fingerprint):
        # `micronas store compact` must migrate monoliths even when no
        # run has saved under their fingerprint yet.
        write_format1_file(store, fingerprint, {key(1): 1.0})
        results = store.compact_all()
        assert len(results) == 1
        assert results[0]["migrated"] == 1
        assert not store.legacy_cache_path(fingerprint).exists()
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint, strict=True) == 1
        # Second pass: already-migrated stores report nothing to migrate
        # and each directory appears once.
        results = store.compact_all()
        assert len(results) == 1
        assert results[0]["migrated"] == 0

    def test_mismatched_legacy_file_rejected(self, store, fingerprint):
        write_format1_file(store, fingerprint, {key(1): 1.0})
        legacy = store.legacy_cache_path(fingerprint)
        payload = json.loads(legacy.read_text(encoding="utf-8"))
        payload["fingerprint"]["precision"] = "float16"
        legacy.write_text(json.dumps(payload), encoding="utf-8")
        cache = IndicatorCache()
        assert store.load_cache_into(cache, fingerprint) == 0
        assert "fingerprint mismatch" in store.last_rejection
        with pytest.raises(StoreError):
            store.load_cache_into(cache, fingerprint, strict=True)


class TestCompaction:
    def test_compact_folds_segments_preserving_last_write_wins(
            self, store, fingerprint):
        older = IndicatorCache()
        older.put(key(1), 1.0)
        older.put(key(2), 2.0)
        store.save_cache(older, fingerprint)
        newer = IndicatorCache()
        newer.put(key(1), 99.0)  # overrides the older segment's row
        store.save_cache(newer, fingerprint)
        assert len(segment_files(store, fingerprint)) > 0
        stats = store.compact_cache(fingerprint)
        assert stats["segments_folded"] > 0
        assert stats["entries"] == 2
        assert segment_files(store, fingerprint) == []
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint, strict=True) == 2
        assert restored.get(key(1)) == 99.0
        assert restored.get(key(2)) == 2.0

    def test_compaction_is_idempotent(self, store, fingerprint):
        cache = IndicatorCache()
        for i in range(10):
            cache.put(key(i), float(i))
        store.save_cache(cache, fingerprint)
        store.compact_cache(fingerprint)

        def layout():
            directory = store.cache_dir(fingerprint)
            return {path.name: path.read_bytes()
                    for path in directory.glob("shard-*.base.jsonl")}

        first = layout()
        assert first  # compaction wrote per-shard bases
        stats = store.compact_cache(fingerprint)
        assert stats["segments_folded"] == 0
        assert layout() == first

    def test_compaction_folds_monolithic_base_away(self, store,
                                                   fingerprint):
        # A pre-index directory (monolithic base.json) compacts into
        # per-shard bases + indexes; the monolith does not linger.
        write_format1_file(store, fingerprint, {key(1): 1.0})
        cache = IndicatorCache()
        cache.put(key(2), 2.0)
        store.save_cache(cache, fingerprint)  # migration writes base.json
        directory = store.cache_dir(fingerprint)
        assert (directory / "base.json").exists()
        store.compact_cache(fingerprint)
        assert not (directory / "base.json").exists()
        assert list(directory.glob("shard-*.base.jsonl"))
        assert list(directory.glob("shard-*.idx.json"))
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint, strict=True) == 2
        assert restored.get(key(1)) == 1.0
        assert restored.get(key(2)) == 2.0

    def test_auto_compaction_past_segment_threshold(self, tmp_path,
                                                    fingerprint):
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=2)
        cache = IndicatorCache()
        for i in range(4):
            cache.put(key(i), float(i))
            store.save_cache(cache, fingerprint)
        # Four saves, threshold 2: the store must have folded segments
        # down along the way rather than accumulating one per save.
        assert len(segment_files(store, fingerprint)) <= 2
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint, strict=True) == 4

    def test_auto_compaction_amortized_against_base_bytes(self, tmp_path,
                                                          fingerprint):
        """Tiny deltas against a big base must NOT rewrite the base on
        every few saves — segments accumulate until their bytes rival
        the base (log-structured amortization), so every-gather flushing
        stays O(delta) amortized."""
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=2)
        bulk = IndicatorCache()
        for i in range(500):
            bulk.put(key(i), float(i))
        store.save_cache(bulk, fingerprint)
        store.compact_cache(fingerprint)  # big base, zero segments
        cache = IndicatorCache()
        for i in range(500, 510):
            cache.put(key(i), float(i))
            store.save_cache(cache, fingerprint)
        # Ten one-row segments are far smaller than the 500-row base:
        # they must all still be pending, not folded.
        assert len(segment_files(store, fingerprint)) == 10
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint,
                                     strict=True) == 510

    def test_compaction_disabled_for_benchmarks(self, tmp_path,
                                                fingerprint):
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=None)
        cache = IndicatorCache()
        for i in range(8):
            cache.put(key(i), float(i))
            store.save_cache(cache, fingerprint)
        assert len(segment_files(store, fingerprint)) == 8


class TestConcurrentAppend:
    def test_two_processes_appending_one_shard_drop_no_rows(
            self, tmp_path, fingerprint):
        """Both writers hash every key into the single shard, so the
        shard flock is the only thing keeping their segment sequence
        numbers distinct."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        store = RuntimeStore(tmp_path / "store", shards=1,
                             auto_compact_segments=None)
        rows_per_writer = 20

        def writer(writer_id: int) -> None:
            cache = IndicatorCache()
            for row in range(rows_per_writer):
                cache.put(key(writer_id * 1000 + row),
                          float(writer_id * 1000 + row))
                store.save_cache(cache, fingerprint)
                time.sleep(0.001)

        context = multiprocessing.get_context("fork")
        processes = [context.Process(target=writer, args=(writer_id,))
                     for writer_id in (1, 2)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        restored = IndicatorCache()
        loaded = store.load_cache_into(restored, fingerprint, strict=True)
        assert loaded == 2 * rows_per_writer
        for writer_id in (1, 2):
            for row in range(rows_per_writer):
                value = float(writer_id * 1000 + row)
                assert restored.get(key(writer_id * 1000 + row)) == value

    def test_compaction_racing_appenders_drops_no_rows(self, tmp_path,
                                                       fingerprint):
        """A compactor folding while a writer appends and reads: every
        row persisted must survive (all-shard-locks on the fold) and
        every load must see at least what the writer already saved (the
        base lock on replay — without it, a load between the compactor's
        base swap and segment unlink sees a hole)."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        store = RuntimeStore(tmp_path / "store", shards=2,
                             auto_compact_segments=None)
        rows = 30

        def writer() -> None:
            cache = IndicatorCache()
            for row in range(rows):
                cache.put(key(row), float(row))
                store.save_cache(cache, fingerprint)
                probe = IndicatorCache()
                seen = store.load_cache_into(probe, fingerprint,
                                             strict=True)
                assert seen >= row + 1, (seen, row)
                time.sleep(0.001)

        context = multiprocessing.get_context("fork")
        process = context.Process(target=writer)
        process.start()
        for _ in range(10):
            store.compact_cache(fingerprint)
            time.sleep(0.003)
        process.join(timeout=60)
        assert process.exitcode == 0
        store.compact_cache(fingerprint)
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint,
                                     strict=True) == rows


class TestLutDeviceNameKeying:
    """Regression: device names that slug identically must not collide."""

    def test_slug_colliding_names_keep_distinct_luts(self, store,
                                                     tiny_macro_config):
        entries_a = {("nor_conv_3x3", 4, 4, 8, 8, 3, 1): 1.25}
        entries_b = {("nor_conv_3x3", 4, 4, 8, 8, 3, 1): 7.5}
        lut_a = LatencyLUT("jetson nano", dict(entries_a), 0.5)
        lut_b = LatencyLUT("jetson-nano", dict(entries_b), 0.25)
        path_a = store.lut_put(lut_a, "float32", tiny_macro_config)
        path_b = store.lut_put(lut_b, "float32", tiny_macro_config)
        # Same slug, different digests: two files, no clobbering (the
        # format-1 layout mapped both names onto one path, so whichever
        # profiled second destroyed the first's profile and both ends
        # re-profiled forever).
        assert path_a != path_b
        got_a = store.lut_get("jetson nano", "float32", tiny_macro_config)
        got_b = store.lut_get("jetson-nano", "float32", tiny_macro_config)
        assert got_a is not None and got_a.entries == entries_a
        assert got_b is not None and got_b.entries == entries_b

    def test_both_colliding_names_inventoried(self, store,
                                              tiny_macro_config):
        store.lut_put(LatencyLUT("jetson nano", {("skip_connect", 1): 0.1},
                                 0.0), "float32", tiny_macro_config)
        store.lut_put(LatencyLUT("jetson-nano", {("skip_connect", 1): 0.2},
                                 0.0), "float32", tiny_macro_config)
        devices = sorted(meta["device"] for meta in store.lut_keys())
        assert devices == ["jetson nano", "jetson-nano"]


def dead_pid():
    """A pid guaranteed to belong to no live process: a child we already
    reaped (tests using literal pids like 4242 could collide with a real
    process and make the liveness check spare a genuinely stale file)."""
    context = multiprocessing.get_context()
    child = context.Process(target=lambda: None)
    child.start()
    child.join()
    return child.pid


class TestGarbageCollection:
    def test_gc_sweeps_stale_tmp_and_lock_sidecars(self, store):
        pid = dead_pid()
        stale_tmp = store.root / f"lut__x__abc.json.{pid}.tmp"
        stale_lock = store.root / "lut__x__abc.json.lock"
        fresh_tmp = store.root / f"lut__y__def.json.{pid}.tmp"
        for path in (stale_tmp, stale_lock, fresh_tmp):
            path.write_text("", encoding="utf-8")
        old = time.time() - 7200
        os.utime(stale_tmp, (old, old))
        os.utime(stale_lock, (old, old))
        removed = store.gc(max_age_seconds=3600)
        assert removed == {"tmp": 1, "lock": 1}
        assert not stale_tmp.exists()
        assert not stale_lock.exists()
        assert fresh_tmp.exists()  # a live writer's staging file stays

    def test_gc_spares_a_live_writers_sidecars(self, store):
        """Regression: age alone must not condemn a `.tmp` — a paused or
        slow writer (this very process) may still be mid-rename long
        after any sane age cutoff."""
        live_tmp = store.root / f"lut__x__abc.json.{os.getpid()}.tmp"
        live_tmp.write_text("", encoding="utf-8")
        old = time.time() - 7200
        os.utime(live_tmp, (old, old))
        assert store.gc(max_age_seconds=3600)["tmp"] == 0
        assert live_tmp.exists()
        # A pid-less orphan (foreign naming) still sweeps by age alone.
        orphan = store.root / "lut__x__abc.json.tmp"
        orphan.write_text("", encoding="utf-8")
        os.utime(orphan, (old, old))
        assert store.gc(max_age_seconds=3600)["tmp"] == 1
        assert not orphan.exists()
        assert live_tmp.exists()

    def test_gc_never_unlinks_a_held_lock(self, store):
        fcntl = pytest.importorskip("fcntl")
        held = store.root / "lut__x__abc.json.lock"
        held.write_text("", encoding="utf-8")
        old = time.time() - 7200
        os.utime(held, (old, old))
        with open(held, "r+", encoding="utf-8") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                # Stale by age, but held: pulling it out from under the
                # holder would let a second writer acquire a fresh inode
                # and break mutual exclusion.
                assert store.gc(max_age_seconds=3600)["lock"] == 0
                assert held.exists()
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        assert store.gc(max_age_seconds=3600)["lock"] == 1

    def test_gc_reaches_cache_directories(self, store, fingerprint):
        cache = IndicatorCache()
        cache.put(key(1), 1.0)
        store.save_cache(cache, fingerprint)
        orphan = (store.cache_dir(fingerprint)
                  / f"base.json.{dead_pid()}.tmp")
        orphan.write_text("", encoding="utf-8")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        assert store.gc(max_age_seconds=3600)["tmp"] == 1
        assert not orphan.exists()
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint) == 1

    def test_compaction_sweeps_stale_staging_files(self, store,
                                                   fingerprint):
        cache = IndicatorCache()
        cache.put(key(1), 1.0)
        store.save_cache(cache, fingerprint)
        orphan = (store.cache_dir(fingerprint)
                  / f"base.json.{dead_pid()}.tmp")
        orphan.write_text("", encoding="utf-8")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        store.compact_cache(fingerprint)
        assert not orphan.exists()


class TestInventory:
    def test_inventory_reports_both_formats(self, store, fingerprint):
        cache = IndicatorCache()
        cache.put(key(1), 1.0)
        store.save_cache(cache, fingerprint)
        stale = cache_fingerprint(ProxyConfig(seed=5), MacroConfig.full())
        write_format1_file(store, stale, {key(9): 9.0})
        inventory = store.cache_inventory()
        formats = sorted(entry["format"] for entry in inventory)
        assert formats == [1, 2]
        modern = next(e for e in inventory if e["format"] == 2)
        assert modern["segments"] == 1
        assert modern["shards"] == store.shards
        legacy = next(e for e in inventory if e["format"] == 1)
        assert legacy["base_rows"] == 1

    def test_unreadable_meta_refuses_saves_instead_of_resharding(
            self, store, fingerprint):
        # Rewriting a damaged meta with a (possibly different) shard
        # count would re-hash keys across shards and scramble the
        # per-shard ordering last-write-wins rests on: refuse loudly.
        cache = IndicatorCache()
        cache.put(key(1), 1.0)
        store.save_cache(cache, fingerprint)
        meta_path = store.cache_dir(fingerprint) / "meta.json"
        meta_path.write_text("{torn", encoding="utf-8")
        cache.put(key(2), 2.0)
        with pytest.raises(StoreError, match="unreadable store meta"):
            store.save_cache(cache, fingerprint)
        # Reads stay available (the meta fingerprint check is skipped,
        # base/segment fingerprints still guard).
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint) == 1

    def test_inventory_tolerates_damaged_payloads(self, store,
                                                  fingerprint):
        # A legacy-named file with valid-but-wrong-shape JSON, and a
        # cache dir with a junk meta: the diagnostic listing a user
        # reaches for on a damaged store must not traceback.
        (store.root / "indicator_cache__deadbeef.json").write_text(
            '[1, 2]', encoding="utf-8")
        (store.root / "indicator_cache__cafecafe.json").write_text(
            '{"fingerprint": 3, "entries": 7}', encoding="utf-8")
        broken_dir = store.root / "cache2__baadf00d"
        broken_dir.mkdir()
        (broken_dir / "meta.json").write_text('"junk"', encoding="utf-8")
        inventory = store.cache_inventory()
        assert len(inventory) == 3
        assert all(entry["base_rows"] == 0 for entry in inventory)
