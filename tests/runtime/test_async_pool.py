"""Async executor: completion-order independence, fuzzing, steady-state.

The determinism contract under test: no matter in which order chunk
futures resolve — reversed, interleaved, rotated, with duplicate
genotypes in flight — the merged cache and every assembled
``IndicatorTable`` are bit-identical to serial evaluation.
"""

import random

import numpy as np
import pytest

from repro.engine import Engine
from repro.errors import SearchError
from repro.runtime.async_pool import (
    AsyncPopulationExecutor,
    ChunkGatherError,
    FuturePool,
)
from repro.search.objective import HybridObjective
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS
from repro.searchspace.space import NasBench201Space


@pytest.fixture()
def population():
    space = NasBench201Space()
    sample = space.sample(8, rng=21)
    return sample + sample[:3]  # duplicates exercise canonical dedupe


def _engine(tiny_proxy_config):
    return Engine(proxy_config=tiny_proxy_config)


# ----------------------------------------------------------------------
# Adversarial completion orders
# ----------------------------------------------------------------------
def _reversed_order(pending):
    return list(reversed(pending))


def _interleaved_order(pending):
    return pending[::2] + pending[1::2]


def _rotated_order(pending):
    return pending[3:] + pending[:3]


def _shuffled_order(seed):
    def order(pending):
        out = list(pending)
        random.Random(seed).shuffle(out)
        return out

    return order


ADVERSARIAL_ORDERS = [
    _reversed_order,
    _interleaved_order,
    _rotated_order,
    _shuffled_order(1),
    _shuffled_order(2),
]


class OrderFuzzedAsyncExecutor(AsyncPopulationExecutor):
    """Serial async executor whose futures resolve in an adversarial
    order: the pending queue is permuted before every gather, so chunks
    "complete" reversed / interleaved / shuffled instead of FIFO."""

    def __init__(self, order, chunk_size=2):
        super().__init__(n_workers=1, chunk_size=chunk_size, mode="serial")
        self._order = order

    def gather(self, k=1):
        self.pool._pending = self._order(self.pool._pending)
        return super().gather(k)


class TestCompletionOrderFuzzing:
    @pytest.mark.parametrize("order", ADVERSARIAL_ORDERS,
                             ids=["reversed", "interleaved", "rotated",
                                  "shuffle1", "shuffle2"])
    def test_fuzzed_orders_bit_identical_table(self, tiny_proxy_config,
                                               population, order):
        serial = _engine(tiny_proxy_config).evaluate_population(population)
        executor = OrderFuzzedAsyncExecutor(order, chunk_size=2)
        fuzzed = _engine(tiny_proxy_config).evaluate_population(
            population, executor=executor
        )
        assert fuzzed.unique_canonical == serial.unique_canonical
        for name in serial.columns:
            np.testing.assert_array_equal(serial.columns[name],
                                          fuzzed.columns[name])

    @pytest.mark.parametrize("order", ADVERSARIAL_ORDERS,
                             ids=["reversed", "interleaved", "rotated",
                                  "shuffle1", "shuffle2"])
    def test_fuzzed_incremental_gather_identical(self, tiny_proxy_config,
                                                 population, order):
        """gather(1) in adversarial completion order, one chunk at a time."""
        serial = _engine(tiny_proxy_config).evaluate_population(population)
        engine = _engine(tiny_proxy_config)
        executor = OrderFuzzedAsyncExecutor(order, chunk_size=1)
        executor.submit_population(engine, population)
        landed = []
        while executor.num_pending:
            for chunk in executor.gather(1):
                landed.extend(chunk.canonical_indices)
        assert sorted(landed) == sorted(set(landed))  # no index twice
        table = engine.evaluate_population(population)
        assert table.cache_misses == 0  # everything pre-merged
        for name in serial.columns:
            np.testing.assert_array_equal(serial.columns[name],
                                          table.columns[name])

    def test_duplicate_genotype_population_in_flight(self,
                                                     tiny_proxy_config):
        """A population that is one genotype many times (plus canonical
        twins) must ship exactly one chunk and merge exactly once."""
        base = Genotype.from_arch_str(
            "|nor_conv_3x3~0|+|none~0|none~1|+|skip_connect~0|none~1|none~2|"
        )
        # Canonical twin: differs from `base` only on edge 1->2, which is
        # dead either way (node 2's only outgoing edge is none), so both
        # canonicalize identically.
        twin = base.with_op(2, "nor_conv_3x3")
        from repro.searchspace.canonical import canonicalize

        assert canonicalize(twin) == canonicalize(base)
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=4,
                                           mode="serial")
        shipped = executor.submit_population(engine, [base, twin] * 5)
        assert shipped == 1
        assert executor.submit_population(engine, [twin, base]) == 0
        merged = sum(c.merged_rows for c in executor.gather_all())
        assert merged == 3  # ntk + linear_regions + flops, once
        serial = _engine(tiny_proxy_config).evaluate_population([base, twin])
        warm = engine.evaluate_population([base, twin])
        assert warm.cache_misses == 0
        for name in serial.columns:
            np.testing.assert_array_equal(serial.columns[name],
                                          warm.columns[name])

    def test_double_delivery_first_write_wins(self, tiny_proxy_config,
                                              population):
        """Re-warming an already-merged population changes nothing."""
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                           mode="serial")
        first = executor.warm_population(engine, population,
                                        assume_canonical=False)
        snapshot = dict(engine.cache.items())
        second = executor.warm_population(engine, population,
                                         assume_canonical=False)
        assert first > 0 and second == 0
        assert dict(engine.cache.items()) == snapshot


class TestWorkerFailureRecovery:
    """A poisoned chunk must not wedge the pool or leak in-flight claims."""

    def test_failed_task_leaves_pool_drainable(self):
        pool = FuturePool(n_workers=1, mode="serial")

        def worker(payload):
            if payload == "boom":
                raise ValueError("poisoned chunk")
            return payload

        for payload in ("ok1", "boom", "ok2"):
            pool.submit(worker, payload)
        results = pool.gather_all()
        assert pool.num_pending == 0  # failed task left the queue too
        assert [r.value for r in results] == ["ok1", None, "ok2"]
        assert isinstance(results[1].error, ValueError)

    def test_all_failed_gather_still_counts_as_gather(self,
                                                      tiny_proxy_config,
                                                      population):
        """Regression: a gather whose every chunk failed used to skip
        ``stats.gathers``, understating in reports how often the loop
        synchronised with the pool."""

        def dead_worker(payload):
            raise ValueError("worker died")

        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=100,
                                           mode="serial",
                                           genotype_worker=dead_worker)
        assert executor.submit_population(engine, population) == 1
        with pytest.raises(ChunkGatherError) as info:
            executor.gather_all()
        assert info.value.gathered == []  # nothing landed...
        assert executor.stats.gathers == 1  # ...but the gather happened

    def test_on_gather_hook_fires_even_on_all_failure(self,
                                                      tiny_proxy_config,
                                                      population):
        def dead_worker(payload):
            raise ValueError("worker died")

        flushes = []
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=100,
                                           mode="serial",
                                           genotype_worker=dead_worker)
        executor.on_gather = flushes.append
        executor.submit_population(engine, population)
        with pytest.raises(ChunkGatherError):
            executor.gather_all()
        assert flushes == [[]]
        assert executor.stats.flushes == 1

    def test_flush_error_never_masks_chunk_gather_error(self,
                                                        tiny_proxy_config,
                                                        population):
        """A store hiccup in the flush hook must not swallow the worker
        failures (and landed siblings) ChunkGatherError carries."""
        calls = {"n": 0}

        def flaky_worker(payload):
            from repro.runtime.pool import _evaluate_genotype_chunk

            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("worker died")
            return _evaluate_genotype_chunk(payload)

        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=4,
                                           mode="serial",
                                           genotype_worker=flaky_worker)
        def broken_flush(gathered):
            raise OSError("disk full")

        executor.on_gather = broken_flush
        executor.submit_population(engine, population)
        with pytest.raises(ChunkGatherError) as info:
            executor.gather_all()
        assert isinstance(info.value.__cause__, ValueError)
        assert len(info.value.gathered) >= 1  # siblings still delivered

    def test_flush_error_surfaces_when_no_worker_failed(
            self, tiny_proxy_config, population):
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=4,
                                           mode="serial")

        def broken_flush(gathered):
            raise OSError("disk full")

        executor.on_gather = broken_flush
        executor.submit_population(engine, population)
        with pytest.raises(OSError, match="disk full"):
            executor.gather_all()
        # The chunks themselves landed: their rows are in the cache.
        table = engine.evaluate_population(population)
        assert table.cache_misses == 0

    def test_on_gather_hook_receives_landed_chunks(self, tiny_proxy_config,
                                                   population):
        flushes = []
        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=3,
                                           mode="serial")
        executor.on_gather = flushes.append
        executor.submit_population(engine, population)
        merged = sum(chunk.merged_rows for chunk in executor.gather_all())
        assert merged > 0
        assert len(flushes) == 1
        assert sum(c.merged_rows for c in flushes[0]) == merged

    def test_executor_raises_but_releases_claims(self, tiny_proxy_config,
                                                 population):
        calls = {"n": 0}

        def flaky_worker(payload):
            from repro.runtime.pool import _evaluate_genotype_chunk

            calls["n"] += 1
            if calls["n"] == 2:  # second chunk is poisoned, once
                raise ValueError("worker died")
            return _evaluate_genotype_chunk(payload)

        engine = _engine(tiny_proxy_config)
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                           mode="serial",
                                           genotype_worker=flaky_worker)
        shipped = executor.submit_population(engine, population)
        with pytest.raises(ChunkGatherError) as info:
            executor.gather_all()
        # The error carries everything that still landed plus the cause.
        assert isinstance(info.value.__cause__, ValueError)
        assert len(info.value.failures) == 1
        assert len(info.value.gathered) == shipped - 1
        # Sibling chunks gathered in the same call merged before the
        # raise, the failed chunk's claims were released, and the
        # executor is reusable: resubmission re-ships ONLY the failed
        # candidates and completes bit-identically to serial.
        assert executor.num_pending == 0
        assert executor.submit_population(engine, population) == 1
        assert executor.gather_all()[0].merged_rows > 0
        serial = _engine(tiny_proxy_config).evaluate_population(population)
        table = engine.evaluate_population(population)
        assert table.cache_misses == 0
        for name in serial.columns:
            np.testing.assert_array_equal(serial.columns[name],
                                          table.columns[name])


class TestDropInExecutorHooks:
    def test_warm_population_matches_serial(self, tiny_proxy_config,
                                            population):
        serial = _engine(tiny_proxy_config).evaluate_population(population)
        for mode, workers in (("serial", 1), ("fork", 2), ("thread", 2)):
            with AsyncPopulationExecutor(n_workers=workers, chunk_size=3,
                                         mode=mode) as executor:
                table = _engine(tiny_proxy_config).evaluate_population(
                    population, executor=executor
                )
                assert executor.stats.mode == mode
                for name in serial.columns:
                    np.testing.assert_array_equal(serial.columns[name],
                                                  table.columns[name])

    def test_warm_supernets_matches_serial(self, tiny_proxy_config):
        base = [EdgeSpec(i, tuple(CANDIDATE_OPS)) for i in range(6)]
        states = [[base[0].without(op)] + base[1:]
                  for op in CANDIDATE_OPS[:3]]
        serial_rows = HybridObjective(
            engine=_engine(tiny_proxy_config)
        ).supernet_population(states)
        with AsyncPopulationExecutor(n_workers=1, chunk_size=1,
                                     mode="serial") as executor:
            async_obj = HybridObjective(engine=_engine(tiny_proxy_config),
                                        executor=executor)
            assert async_obj.supernet_population(states) == serial_rows
            assert executor.stats.tasks == len(states)

    def test_search_loop_executor_hook(self, tiny_proxy_config):
        from repro.search.random_search import ZeroShotRandomSearch

        serial = ZeroShotRandomSearch(
            HybridObjective(engine=_engine(tiny_proxy_config)),
            num_samples=6, seed=4,
        ).search()
        with AsyncPopulationExecutor(n_workers=1, chunk_size=2,
                                     mode="serial") as executor:
            pooled = ZeroShotRandomSearch(
                HybridObjective(engine=_engine(tiny_proxy_config)),
                num_samples=6, seed=4, executor=executor,
            ).search()
        assert pooled.genotype == serial.genotype
        assert executor.stats.merged_rows > 0


class TestFuturePoolMechanics:
    def test_serial_gather_is_fifo_and_lazy(self):
        pool = FuturePool(n_workers=1, mode="serial")
        log = []

        def worker(payload):
            log.append(payload)
            return payload * 10

        for i in range(4):
            pool.submit(worker, i, tag=f"t{i}")
        assert log == []  # nothing ran at submit time
        first = pool.gather(2)
        assert [r.value for r in first] == [0, 10]
        assert [r.tag for r in first] == ["t0", "t1"]
        assert pool.num_pending == 2
        rest = pool.gather_all()
        assert [r.value for r in rest] == [20, 30]
        assert log == [0, 1, 2, 3]
        assert pool.gather_all() == []

    def test_gather_clamps_and_validates_k(self):
        pool = FuturePool(n_workers=1, mode="serial")
        with pytest.raises(SearchError):
            pool.gather(0)
        assert pool.gather(5) == []  # nothing pending
        pool.submit(lambda x: x, 1)
        assert len(pool.gather(99)) == 1

    def test_thread_mode_round_trips(self):
        with FuturePool(n_workers=2, mode="thread") as pool:
            for i in range(5):
                pool.submit(lambda x: x + 1, i)
            values = sorted(r.value for r in pool.gather_all())
            assert values == [1, 2, 3, 4, 5]

    def test_idle_fraction_accounting(self):
        pool = FuturePool(n_workers=2, mode="serial")
        # No span and no busy data yet: "no data", not "fully utilised".
        assert pool.idle_fraction() is None
        pool.submit(lambda x: x, 1)
        pool.gather_all()
        # A gather landed but record_busy was never fed — still no data.
        assert pool.idle_fraction() is None
        pool.record_busy(10.0)
        assert pool.busy_seconds >= 10.0
        fraction = pool.idle_fraction()
        assert fraction is not None
        assert 0.0 <= fraction <= 1.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SearchError):
            FuturePool(n_workers=0)
        with pytest.raises(SearchError):
            FuturePool(mode="quantum")
        with pytest.raises(SearchError):
            AsyncPopulationExecutor(chunk_size=0)


class TestSteadyStateSearch:
    def _objective(self, tiny_proxy_config):
        return HybridObjective(engine=_engine(tiny_proxy_config))

    def _search(self, tiny_proxy_config, executor=None, seed=5, cycles=8):
        from repro.search.evolutionary import (
            EvolutionConfig,
            SteadyStateEvolutionarySearch,
        )

        return SteadyStateEvolutionarySearch(
            self._objective(tiny_proxy_config),
            EvolutionConfig(population_size=5, sample_size=2, cycles=cycles),
            seed=seed,
            executor=executor,
        )

    def test_serial_runs_are_reproducible(self, tiny_proxy_config):
        first = self._search(tiny_proxy_config).search()
        second = self._search(tiny_proxy_config).search()
        assert first.genotype == second.genotype
        assert first.indicators == second.indicators

    def test_trajectory_pure_function_of_completion_order(
        self, tiny_proxy_config
    ):
        for order in (_reversed_order, _shuffled_order(3)):
            runs = [
                self._search(
                    tiny_proxy_config,
                    executor=OrderFuzzedAsyncExecutor(order, chunk_size=1),
                ).search()
                for _ in range(2)
            ]
            assert runs[0].genotype == runs[1].genotype
            assert runs[0].indicators == runs[1].indicators

    def test_indicators_bit_identical_to_serial_engine(self,
                                                       tiny_proxy_config):
        result = self._search(tiny_proxy_config).search()
        fresh = _engine(tiny_proxy_config).evaluate(
            result.genotype, with_latency=False
        )
        assert result.indicators == fresh

    def test_budget_accounting(self, tiny_proxy_config):
        search = self._search(tiny_proxy_config, cycles=7)
        result = search.search()
        # population_size + cycles candidates were submitted, exactly.
        assert result.ledger.counts["evolution_candidates"] == 5 + 7

    def test_warm_cache_fast_path_commits_without_futures(
        self, tiny_proxy_config
    ):
        objective = self._objective(tiny_proxy_config)
        from repro.search.evolutionary import (
            EvolutionConfig,
            SteadyStateEvolutionarySearch,
        )

        config = EvolutionConfig(population_size=5, sample_size=2, cycles=6)
        SteadyStateEvolutionarySearch(objective, config, seed=5).search()
        executor = AsyncPopulationExecutor(n_workers=1, chunk_size=1,
                                           mode="serial")
        rerun = SteadyStateEvolutionarySearch(objective, config, seed=5,
                                              executor=executor).search()
        # Same seed over a warm cache: the whole trajectory replays from
        # cache hits; at most a handful of late-breaking children miss.
        assert executor.stats.chunks <= 2
        assert rerun.genotype is not None

    def test_sync_executor_rejected(self, tiny_proxy_config):
        from repro.runtime.pool import PopulationExecutor
        from repro.search.evolutionary import (
            EvolutionConfig,
            SteadyStateEvolutionarySearch,
        )

        with pytest.raises(SearchError):
            SteadyStateEvolutionarySearch(
                self._objective(tiny_proxy_config),
                EvolutionConfig(population_size=4, sample_size=2, cycles=2),
                executor=PopulationExecutor(n_workers=1),
            )

    def test_fork_mode_completes_and_closes(self, tiny_proxy_config):
        import multiprocessing

        with AsyncPopulationExecutor(n_workers=2, chunk_size=1) as executor:
            result = self._search(tiny_proxy_config,
                                  executor=executor).search()
            assert result.genotype is not None
        assert multiprocessing.active_children() == []
