"""Rank aggregation: directions, ties, weights, property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProxyError
from repro.proxies.ranking import combine_ranks, rank_array


class TestRankArray:
    def test_lower_is_better_direction(self):
        ranks = rank_array([3.0, 1.0, 2.0], higher_is_better=False)
        assert list(ranks) == [2.0, 0.0, 1.0]

    def test_higher_is_better_direction(self):
        ranks = rank_array([3.0, 1.0, 2.0], higher_is_better=True)
        assert list(ranks) == [0.0, 2.0, 1.0]

    def test_ties_share_mean_rank(self):
        ranks = rank_array([1.0, 1.0, 5.0], higher_is_better=False)
        assert ranks[0] == ranks[1] == 0.5
        assert ranks[2] == 2.0

    def test_infinity_ranks_worst(self):
        ranks = rank_array([np.inf, 1.0, 2.0], higher_is_better=False)
        assert ranks[0] == 2.0

    def test_nan_rejected(self):
        with pytest.raises(ProxyError):
            rank_array([np.nan, 1.0], higher_is_better=False)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_ranks_are_permutation_mean(self, values):
        ranks = rank_array(values, higher_is_better=False)
        # Rank sum is invariant: n(n-1)/2 regardless of ties.
        n = len(values)
        assert np.isclose(ranks.sum(), n * (n - 1) / 2)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=20, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_direction_flip_reverses_order(self, values):
        lo = rank_array(values, higher_is_better=False)
        hi = rank_array(values, higher_is_better=True)
        n = len(values)
        assert np.allclose(lo + hi, n - 1)


class TestCombineRanks:
    def test_single_indicator(self):
        combined = combine_ranks(
            {"ntk": [5.0, 1.0, 3.0]}, {"ntk": False}
        )
        assert list(combined) == [2.0, 0.0, 1.0]

    def test_two_indicators_agree(self):
        combined = combine_ranks(
            {"a": [1.0, 2.0, 3.0], "b": [10.0, 20.0, 30.0]},
            {"a": False, "b": False},
        )
        assert combined[0] < combined[1] < combined[2]

    def test_weights_scale_contribution(self):
        # b prefers index 1 strongly if weighted up.
        base = combine_ranks(
            {"a": [1.0, 2.0], "b": [2.0, 1.0]},
            {"a": False, "b": False},
        )
        assert base[0] == base[1]  # symmetric
        weighted = combine_ranks(
            {"a": [1.0, 2.0], "b": [2.0, 1.0]},
            {"a": False, "b": False},
            weights={"b": 3.0},
        )
        assert weighted[1] < weighted[0]

    def test_zero_weight_ignores_indicator(self):
        combined = combine_ranks(
            {"a": [1.0, 2.0], "b": [2.0, 1.0]},
            {"a": False, "b": False},
            weights={"b": 0.0},
        )
        assert combined[0] < combined[1]

    def test_missing_direction_rejected(self):
        with pytest.raises(ProxyError):
            combine_ranks({"a": [1.0, 2.0]}, {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ProxyError):
            combine_ranks({"a": [1.0], "b": [1.0, 2.0]},
                          {"a": False, "b": False})

    def test_empty_rejected(self):
        with pytest.raises(ProxyError):
            combine_ranks({}, {})
