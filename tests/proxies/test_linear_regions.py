"""Linear-region proxy: pattern math and expressivity ordering."""

import numpy as np
import pytest

from repro.errors import ProxyError
from repro.proxies.linear_regions import (
    LinearRegionNetwork,
    count_distinct_patterns,
    count_line_regions,
    count_linear_regions,
    count_sample_regions,
    supernet_line_regions,
)
from repro.searchspace.genotype import Genotype


class TestPatternCounting:
    def test_all_identical_rows(self):
        patterns = np.ones((10, 8), dtype=bool)
        assert count_distinct_patterns(patterns) == 1

    def test_all_distinct_rows(self):
        patterns = np.eye(8, dtype=bool)
        assert count_distinct_patterns(patterns) == 8

    def test_duplicates_collapse(self):
        patterns = np.array([[1, 0], [1, 0], [0, 1]], dtype=bool)
        assert count_distinct_patterns(patterns) == 2


class TestLinearRegionNetwork:
    def test_wrong_edge_count_rejected(self):
        with pytest.raises(ProxyError):
            LinearRegionNetwork([("none",)] * 5, channels=2, num_cells=1)

    def test_piecewise_linearity(self, rng, heavy_genotype):
        # A ReLU net restricted to one activation region is affine: check
        # f(a) + f(b) == 2 f((a+b)/2) for nearby points in the same region.
        from repro.autograd import Tensor
        net = LinearRegionNetwork.from_genotype(heavy_genotype, channels=2,
                                                num_cells=1, rng=0)
        base = rng.normal(size=(1, 3, 4, 4))
        eps = 1e-6 * rng.normal(size=(1, 3, 4, 4))
        fa = net(Tensor(base + eps)).data
        fb = net(Tensor(base - eps)).data
        fm = net(Tensor(base)).data
        assert np.allclose(fa + fb, 2 * fm, atol=1e-9)

    def test_deterministic_construction(self, rng, heavy_genotype):
        from repro.autograd import Tensor
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        a = LinearRegionNetwork.from_genotype(heavy_genotype, 2, 1, rng=5)(x).data
        b = LinearRegionNetwork.from_genotype(heavy_genotype, 2, 1, rng=5)(x).data
        assert np.array_equal(a, b)


class TestLineRegions:
    def test_deterministic(self, tiny_proxy_config, heavy_genotype):
        a = count_line_regions(heavy_genotype, tiny_proxy_config)
        b = count_line_regions(heavy_genotype, tiny_proxy_config)
        assert a == b

    def test_conv_heavy_beats_skip_only(self, tiny_proxy_config, heavy_genotype,
                                        skip_only_genotype):
        heavy = count_line_regions(heavy_genotype, tiny_proxy_config)
        trivial = count_line_regions(skip_only_genotype, tiny_proxy_config)
        assert heavy > trivial

    def test_disconnected_has_minimal_regions(self, tiny_proxy_config,
                                              disconnected_genotype,
                                              heavy_genotype):
        lonely = count_line_regions(disconnected_genotype, tiny_proxy_config)
        heavy = count_line_regions(heavy_genotype, tiny_proxy_config)
        assert lonely < heavy

    def test_count_bounded_by_samples(self, tiny_proxy_config, heavy_genotype):
        count = count_line_regions(heavy_genotype, tiny_proxy_config)
        assert 1.0 <= count <= tiny_proxy_config.lr_num_samples

    def test_default_alias(self, tiny_proxy_config, heavy_genotype):
        assert count_linear_regions(heavy_genotype, tiny_proxy_config) == \
            count_line_regions(heavy_genotype, tiny_proxy_config)


class TestSampleRegions:
    def test_bounded_by_batch(self, tiny_proxy_config, heavy_genotype):
        count = count_sample_regions(heavy_genotype, tiny_proxy_config)
        assert 1.0 <= count <= tiny_proxy_config.lr_num_samples

    def test_skip_only_cell_still_counts_stem(self, tiny_proxy_config,
                                              skip_only_genotype):
        # The stem ReLU alone already separates random inputs.
        count = count_sample_regions(skip_only_genotype, tiny_proxy_config)
        assert count >= 1.0


class TestSupernetRegions:
    def test_full_supernet_counts(self, tiny_proxy_config):
        from repro.searchspace.ops import CANDIDATE_OPS
        sets = [CANDIDATE_OPS] * 6
        count = supernet_line_regions(sets, tiny_proxy_config)
        assert count > 1.0

    def test_matches_genotype_for_singletons_semantics(self, tiny_proxy_config,
                                                       heavy_genotype):
        # Singleton supernet is the same function class; counts should be
        # in a comparable range (not exactly equal: different init streams).
        single = supernet_line_regions([(op,) for op in heavy_genotype.ops],
                                       tiny_proxy_config)
        concrete = count_line_regions(heavy_genotype, tiny_proxy_config)
        assert single > 1.0 and concrete > 1.0
