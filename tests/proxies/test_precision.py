"""Float32↔float64 proxy agreement and the float64 bit-identity pin.

Two guarantees ship with the precision-policy substrate:

* **The float64 default is bit-identical to the pre-refactor engine.**
  The hex literals below were produced by the seed code *before* the
  policy was threaded through (same config, same seeds); any change to
  these values means the default path is no longer the historical one.
* **Float32 preserves candidate ranking.**  The proxies are rank
  statistics; a property test over a sampled population asserts
  Spearman/Kendall rank agreement of the NTK and linear-region
  indicators across precisions.
"""

import numpy as np
import pytest

from repro.eval.benchconfig import reduced_proxy_config
from repro.eval.correlation import kendall_tau, spearman_rho
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number, ntk_grams
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space

pytestmark = pytest.mark.precision

#: ``(arch index, κ (hex or 'inf'), linear regions (hex))`` computed by
#: the pre-policy float64 engine at the reduced operating point.
_PINNED_FLOAT64 = [
    (7, "inf", "0x1.c800000000000p+4"),
    (123, "inf", "0x1.1000000000000p+5"),
    (1462, "0x1.803b885f8851ap+4", "0x1.6400000000000p+5"),
    (9999, "0x1.c278f1d11f4c8p+5", "0x1.a000000000000p+4"),
    (15000, "inf", "0x1.4000000000000p+4"),
]


def _rank_vector(values):
    """Ranking-comparable copy: ``inf`` (untrainable) mapped to a shared
    sentinel above every finite value so correlation stays defined."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    ceiling = (finite.max() * 10.0 + 1.0) if finite.size else 1.0
    return np.where(np.isfinite(values), values, ceiling)


def test_float64_default_is_bit_identical_to_pre_refactor():
    config = reduced_proxy_config(seed=0)
    assert config.precision == "float64"
    for index, ntk_hex, lr_hex in _PINNED_FLOAT64:
        genotype = Genotype.from_index(index)
        ntk = ntk_condition_number(genotype, config)
        regions = count_line_regions(genotype, config)
        got = "inf" if not np.isfinite(ntk) else ntk.hex()
        assert got == ntk_hex, f"arch {index}: κ drifted from the pin"
        assert regions.hex() == lr_hex, f"arch {index}: LR drifted"


def test_float32_grams_compute_in_float32():
    config = reduced_proxy_config(seed=0).with_precision("float32")
    grams = ntk_grams(Genotype.from_index(1462), config)
    assert all(gram.dtype == np.float32 for gram in grams)
    # And the default stays float64.
    grams64 = ntk_grams(Genotype.from_index(1462), reduced_proxy_config())
    assert all(gram.dtype == np.float64 for gram in grams64)


def test_precision_is_part_of_the_cache_key_tuple():
    from dataclasses import astuple

    config = reduced_proxy_config(seed=0)
    assert astuple(config) != astuple(config.with_precision("float32"))


@pytest.mark.parametrize("seed", [0, 1])
def test_float32_preserves_proxy_ranking(seed):
    """Property test: rank agreement across precisions on a sampled
    population (the acceptance bar is Spearman ≥ 0.99)."""
    space = NasBench201Space()
    genotypes = space.sample(24, rng=seed)
    config64 = reduced_proxy_config(seed=0)
    config32 = config64.with_precision("float32")

    ntk64, ntk32, lr64, lr32 = [], [], [], []
    for genotype in genotypes:
        ntk64.append(ntk_condition_number(genotype, config64))
        ntk32.append(ntk_condition_number(genotype, config32))
        lr64.append(count_line_regions(genotype, config64))
        lr32.append(count_line_regions(genotype, config32))

    # Untrainable candidates (κ = inf) must agree exactly across
    # precisions — the accumulate-dtype eigensolve sees the same spectrum
    # shape either way.
    np.testing.assert_array_equal(np.isfinite(ntk64), np.isfinite(ntk32))

    assert spearman_rho(_rank_vector(ntk64), _rank_vector(ntk32)) >= 0.99
    assert kendall_tau(_rank_vector(ntk64), _rank_vector(ntk32)) >= 0.95
    assert spearman_rho(lr64, lr32) >= 0.99
    assert kendall_tau(lr64, lr32) >= 0.95


def test_float32_finite_values_are_close_not_identical_contract():
    """Float32 κ tracks float64 κ to single-precision accuracy (the
    ranking tests above are the real bar; this guards against silently
    running the float32 path in float64, which would fake agreement)."""
    config64 = reduced_proxy_config(seed=0)
    config32 = config64.with_precision("float32")
    genotype = Genotype.from_index(1462)
    k64 = ntk_condition_number(genotype, config64)
    k32 = ntk_condition_number(genotype, config32)
    assert k32 == pytest.approx(k64, rel=1e-4)
    assert k32 != k64  # genuinely computed at a different precision
