"""ProxyConfig and batch helpers."""

import numpy as np

from repro.proxies.base import ProxyConfig, resize_batch


class TestProxyConfig:
    def test_defaults_match_paper(self):
        cfg = ProxyConfig()
        assert cfg.ntk_batch_size == 32  # paper's recommended batch (Fig. 2b)

    def test_macro_config_reduced(self):
        cfg = ProxyConfig(init_channels=8, cells_per_stage=1, input_size=16)
        macro = cfg.macro_config()
        assert macro.init_channels == 8
        assert macro.cells_per_stage == 1
        assert macro.image_size == 16

    def test_macro_config_class_override(self):
        assert ProxyConfig().macro_config(num_classes=100).num_classes == 100

    def test_with_batch_size(self):
        cfg = ProxyConfig().with_batch_size(16)
        assert cfg.ntk_batch_size == 16

    def test_with_seed(self):
        assert ProxyConfig().with_seed(5).seed == 5

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            ProxyConfig().seed = 3


class TestResizeBatch:
    def test_noop_at_target_size(self):
        x = np.zeros((2, 3, 16, 16))
        assert resize_batch(x, 16) is x

    def test_downsample_shape(self):
        x = np.zeros((2, 3, 32, 32))
        assert resize_batch(x, 16).shape == (2, 3, 16, 16)

    def test_upsample_shape(self):
        x = np.zeros((2, 3, 8, 8))
        assert resize_batch(x, 16).shape == (2, 3, 16, 16)

    def test_downsample_takes_strided_pixels(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = resize_batch(x, 2)
        assert out[0, 0, 0, 0] == x[0, 0, 0, 0]
        assert out[0, 0, 1, 1] == x[0, 0, 2, 2]
