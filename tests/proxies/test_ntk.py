"""NTK proxy: spectrum math, determinism, mode consistency, semantics."""

import numpy as np
import pytest

from repro.errors import ProxyError
from repro.proxies.base import ProxyConfig
from repro.proxies.ntk import (
    NtkResult,
    compute_ntk_gram,
    condition_numbers,
    ntk_condition_number,
    ntk_spectrum,
    supernet_ntk_condition_number,
)
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import build_network
from repro.searchspace.ops import CANDIDATE_OPS


class TestNtkResult:
    def test_k1_is_classic_condition_number(self):
        res = NtkResult(np.array([100.0, 10.0, 2.0]), batch_size=3)
        assert res.condition_number == 50.0
        assert res.k(1) == 50.0

    def test_k_indexing_from_smallest(self):
        res = NtkResult(np.array([100.0, 10.0, 2.0]), batch_size=3)
        assert res.k(2) == 10.0
        assert res.k(3) == 1.0  # lambda_max / lambda_max

    def test_k_out_of_range(self):
        res = NtkResult(np.array([1.0, 1.0]), batch_size=2)
        with pytest.raises(ProxyError):
            res.k(0)
        with pytest.raises(ProxyError):
            res.k(3)

    def test_singular_kernel_is_infinite(self):
        res = NtkResult(np.array([5.0, 0.0]), batch_size=2)
        assert res.condition_number == float("inf")

    def test_zero_kernel_is_infinite(self):
        res = NtkResult(np.array([0.0, 0.0]), batch_size=2)
        assert res.condition_number == float("inf")

    def test_condition_numbers_helper(self):
        gram = np.diag([9.0, 3.0, 1.0])
        ks = condition_numbers(gram, 3)
        assert np.allclose(ks, [9.0, 3.0, 1.0])


class TestGramComputation:
    def test_gram_symmetric_psd(self, tiny_proxy_config, heavy_genotype, rng):
        net = build_network(heavy_genotype, tiny_proxy_config.macro_config(), rng=0)
        images = rng.normal(size=(6, 3, 8, 8))
        gram = compute_ntk_gram(net, images)
        assert gram.shape == (6, 6)
        assert np.allclose(gram, gram.T)
        assert np.linalg.eigvalsh(gram).min() > -1e-6

    def test_gram_linear_model_exact(self, rng):
        # For f(x) = w.x (no hidden layers), NTK[i,j] = x_i . x_j exactly.
        from repro import nn
        net = nn.Sequential(nn.Flatten(), nn.Linear(12, 1, bias=False, rng=0))
        images = rng.normal(size=(5, 3, 2, 2))
        gram = compute_ntk_gram(net, images)
        flat = images.reshape(5, -1)
        assert np.allclose(gram, flat @ flat.T, atol=1e-8)

    def test_coupled_and_frozen_agree_without_bn(self, rng):
        from repro import nn
        net1 = nn.Sequential(nn.Flatten(), nn.Linear(12, 3, rng=1))
        net2 = nn.Sequential(nn.Flatten(), nn.Linear(12, 3, rng=1))
        images = rng.normal(size=(4, 3, 2, 2))
        g_frozen = compute_ntk_gram(net1, images, coupled=False)
        g_coupled = compute_ntk_gram(net2, images, coupled=True)
        assert np.allclose(g_frozen, g_coupled, atol=1e-8)

    def test_parameterless_network_rejected(self, rng):
        from repro import nn
        net = nn.Sequential(nn.ReLU())
        with pytest.raises(ProxyError):
            compute_ntk_gram(net, rng.normal(size=(2, 3, 4, 4)))


class TestGenotypeLevel:
    def test_deterministic(self, tiny_proxy_config, heavy_genotype):
        a = ntk_condition_number(heavy_genotype, tiny_proxy_config)
        b = ntk_condition_number(heavy_genotype, tiny_proxy_config)
        assert a == b

    def test_different_seeds_differ(self, tiny_proxy_config, heavy_genotype):
        a = ntk_condition_number(heavy_genotype, tiny_proxy_config)
        b = ntk_condition_number(heavy_genotype, tiny_proxy_config.with_seed(99))
        assert a != b

    def test_disconnected_arch_infinite(self, tiny_proxy_config,
                                        disconnected_genotype):
        # Cell output is constant zero -> logits barely depend on most params.
        kappa = ntk_condition_number(disconnected_genotype, tiny_proxy_config)
        assert kappa > 1e3 or np.isinf(kappa)

    def test_spectrum_batch_size(self, tiny_proxy_config, heavy_genotype):
        res = ntk_spectrum(heavy_genotype, tiny_proxy_config)
        assert res.batch_size == tiny_proxy_config.ntk_batch_size
        assert res.eigenvalues.shape == (tiny_proxy_config.ntk_batch_size,)
        assert np.all(np.diff(res.eigenvalues) <= 1e-9)  # descending

    def test_supplied_images_resized(self, tiny_proxy_config, heavy_genotype, rng):
        images = rng.normal(size=(8, 3, 32, 32))
        res = ntk_spectrum(heavy_genotype, tiny_proxy_config, images=images)
        assert res.batch_size == 8

    def test_repeats_average(self, tiny_proxy_config, heavy_genotype):
        import dataclasses
        cfg3 = dataclasses.replace(tiny_proxy_config, repeats=2)
        val = ntk_condition_number(heavy_genotype, cfg3)
        assert np.isfinite(val) and val > 1.0


class TestSupernetLevel:
    def test_full_supernet_finite(self, tiny_proxy_config):
        specs = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        kappa = supernet_ntk_condition_number(specs, tiny_proxy_config)
        assert np.isfinite(kappa) and kappa > 1.0

    def test_deterministic(self, tiny_proxy_config):
        specs = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        a = supernet_ntk_condition_number(specs, tiny_proxy_config)
        b = supernet_ntk_condition_number(specs, tiny_proxy_config)
        assert a == b

    def test_depends_on_alive_set(self, tiny_proxy_config):
        full = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        pruned = [spec.without("nor_conv_3x3") for spec in full]
        a = supernet_ntk_condition_number(full, tiny_proxy_config)
        b = supernet_ntk_condition_number(pruned, tiny_proxy_config)
        assert a != b
