"""Programmatic Fig. 2a / Fig. 2b sweeps."""

import numpy as np
import pytest

from repro.errors import ProxyError
from repro.proxies.analysis import (
    BatchSizeSweep,
    ConditionNumberSweep,
    batch_size_sweep,
    condition_number_sweep,
)
from repro.proxies.base import ProxyConfig

FAST = ProxyConfig(init_channels=4, cells_per_stage=1, input_size=8,
                   ntk_batch_size=8, lr_num_samples=16, lr_input_size=4,
                   lr_channels=2, seed=21)


@pytest.fixture(scope="module")
def cn_sweep():
    return condition_number_sweep(FAST, num_archs=10,
                                  datasets=("cifar10", "cifar100"),
                                  max_index=6, seed=3)


@pytest.fixture(scope="module")
def bs_sweep():
    return batch_size_sweep(FAST, batch_sizes=(4, 8), num_archs=8,
                            num_trials=2, seed=5)


class TestConditionNumberSweep:
    def test_structure(self, cn_sweep):
        assert cn_sweep.indices == tuple(range(1, 7))
        assert set(cn_sweep.taus) == {"cifar10", "cifar100"}
        for taus in cn_sweep.taus.values():
            assert len(taus) == 6
            assert all(-1.0 <= t <= 1.0 for t in taus)

    def test_best_index_consistent(self, cn_sweep):
        best = cn_sweep.best_index("cifar10")
        best_tau = cn_sweep.tau("cifar10", best)
        assert best_tau == max(cn_sweep.taus["cifar10"])

    def test_signal_at_small_indices(self, cn_sweep):
        """The Fig. 2a shape: usable signal somewhere in the small indices."""
        assert max(cn_sweep.taus["cifar10"][:4]) > 0.0

    def test_k1_is_degenerate(self, cn_sweep):
        """K_1 = λ1/λ1 = 1 for every arch: τ must be exactly 0."""
        assert cn_sweep.tau("cifar10", 1) == pytest.approx(0.0)

    def test_too_few_archs(self):
        with pytest.raises(ProxyError):
            condition_number_sweep(FAST, num_archs=2)

    def test_deterministic(self):
        a = condition_number_sweep(FAST, num_archs=6,
                                   datasets=("cifar10",), max_index=4, seed=9)
        b = condition_number_sweep(FAST, num_archs=6,
                                   datasets=("cifar10",), max_index=4, seed=9)
        assert a.taus == b.taus


class TestBatchSizeSweep:
    def test_structure(self, bs_sweep):
        assert bs_sweep.batch_sizes == (4, 8)
        assert len(bs_sweep.taus_per_trial) == 2
        assert len(bs_sweep.average) == 2

    def test_average_is_trial_mean(self, bs_sweep):
        manual = np.mean(bs_sweep.taus_per_trial, axis=0)
        np.testing.assert_allclose(bs_sweep.average, manual)

    def test_recommended_within_choices(self, bs_sweep):
        assert bs_sweep.recommended_batch_size() in bs_sweep.batch_sizes

    def test_recommendation_prefers_small(self):
        sweep = BatchSizeSweep(batch_sizes=(4, 8, 16, 32),
                               taus_per_trial=((0.30, 0.38, 0.40, 0.41),))
        assert sweep.recommended_batch_size(tolerance=0.05) == 8
        assert sweep.recommended_batch_size(tolerance=0.0) == 16 or \
            sweep.recommended_batch_size(tolerance=0.0) == 32

    def test_validation(self):
        with pytest.raises(ProxyError):
            batch_size_sweep(FAST, batch_sizes=())
        with pytest.raises(ProxyError):
            batch_size_sweep(FAST, num_trials=0)
