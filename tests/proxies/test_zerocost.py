"""Extended zero-cost proxy suite."""

import numpy as np
import pytest

from repro.errors import ProxyError
from repro.proxies.zerocost import (
    PROXY_REGISTRY,
    evaluate_proxy,
    fisher_score,
    grad_norm_score,
    jacob_cov_score,
    naswot_score,
    snip_score,
    synflow_score,
)

ALL_EXTRA = [grad_norm_score, snip_score, fisher_score, synflow_score,
             jacob_cov_score, naswot_score]


class TestCommonProperties:
    @pytest.mark.parametrize("proxy", ALL_EXTRA)
    def test_deterministic(self, proxy, tiny_proxy_config, heavy_genotype):
        a = proxy(heavy_genotype, tiny_proxy_config)
        b = proxy(heavy_genotype, tiny_proxy_config)
        assert a == b

    @pytest.mark.parametrize("proxy", ALL_EXTRA)
    def test_finite_for_connected_arch(self, proxy, tiny_proxy_config,
                                       heavy_genotype):
        assert np.isfinite(proxy(heavy_genotype, tiny_proxy_config))

    @pytest.mark.parametrize("proxy", ALL_EXTRA)
    def test_architecture_sensitive(self, proxy, tiny_proxy_config,
                                    heavy_genotype, light_genotype):
        assert proxy(heavy_genotype, tiny_proxy_config) != \
            proxy(light_genotype, tiny_proxy_config)


class TestIndividualSemantics:
    def test_grad_norm_positive(self, tiny_proxy_config, heavy_genotype):
        assert grad_norm_score(heavy_genotype, tiny_proxy_config) > 0

    def test_fisher_is_squared_grad_norm(self, tiny_proxy_config,
                                         heavy_genotype):
        # Identical when evaluated on the same network/batch (shared rng).
        from repro.utils.rng import new_rng
        g = grad_norm_score(heavy_genotype, tiny_proxy_config, rng=new_rng(5))
        f = fisher_score(heavy_genotype, tiny_proxy_config, rng=new_rng(5))
        assert f == pytest.approx(g**2, rel=1e-9)

    def test_snip_positive(self, tiny_proxy_config, heavy_genotype):
        assert snip_score(heavy_genotype, tiny_proxy_config) > 0

    def test_synflow_restores_weights(self, tiny_proxy_config, heavy_genotype):
        # Calling synflow twice must not corrupt the (rebuilt) weights;
        # determinism already covers it, but check positivity too.
        score = synflow_score(heavy_genotype, tiny_proxy_config)
        assert score > 0

    def test_synflow_more_capacity_more_flow(self, tiny_proxy_config,
                                             heavy_genotype,
                                             skip_only_genotype):
        assert synflow_score(heavy_genotype, tiny_proxy_config) > \
            synflow_score(skip_only_genotype, tiny_proxy_config)

    def test_jacob_cov_degenerate_for_disconnected(self, tiny_proxy_config,
                                                   disconnected_genotype,
                                                   heavy_genotype):
        bad = jacob_cov_score(disconnected_genotype, tiny_proxy_config)
        good = jacob_cov_score(heavy_genotype, tiny_proxy_config)
        assert good > bad

    def test_naswot_bounded_by_batch_information(self, tiny_proxy_config,
                                                 heavy_genotype):
        score = naswot_score(heavy_genotype, tiny_proxy_config)
        assert np.isfinite(score)

    def test_naswot_expressive_beats_disconnected(self, tiny_proxy_config,
                                                  heavy_genotype,
                                                  disconnected_genotype):
        # Disconnected cells collapse activation patterns -> near-singular
        # Hamming kernel -> strongly negative log-determinant.
        assert naswot_score(heavy_genotype, tiny_proxy_config) > \
            naswot_score(disconnected_genotype, tiny_proxy_config) + 10.0


class TestRegistry:
    def test_contains_paper_and_extra_proxies(self):
        assert {"ntk", "linear_regions", "grad_norm", "snip", "fisher",
                "synflow", "jacob_cov", "naswot"} <= set(PROXY_REGISTRY)

    def test_directions(self):
        assert not PROXY_REGISTRY["ntk"].higher_is_better
        assert PROXY_REGISTRY["linear_regions"].higher_is_better
        assert PROXY_REGISTRY["synflow"].higher_is_better

    def test_evaluate_by_name(self, tiny_proxy_config, heavy_genotype):
        direct = snip_score(heavy_genotype, tiny_proxy_config)
        via_registry = evaluate_proxy("snip", heavy_genotype, tiny_proxy_config)
        assert direct == via_registry

    def test_unknown_name_rejected(self, tiny_proxy_config, heavy_genotype):
        with pytest.raises(ProxyError):
            evaluate_proxy("zen_score", heavy_genotype, tiny_proxy_config)
