"""Analytic FLOPs/params vs built networks; scale checks vs the paper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proxies.flops import count_flops, count_params
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig, build_network
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

ops_strategy = st.tuples(*[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)])


class TestParamsMatchBuiltNetworks:
    @pytest.mark.parametrize("arch", [
        ("none",) * 6,
        ("skip_connect",) * 6,
        ("nor_conv_3x3",) * 6,
        ("nor_conv_1x1",) * 6,
        ("avg_pool_3x3",) * 6,
        ("nor_conv_3x3", "skip_connect", "nor_conv_1x1",
         "avg_pool_3x3", "none", "nor_conv_3x3"),
    ])
    def test_exact_match_tiny_config(self, arch, tiny_macro_config):
        genotype = Genotype(arch)
        net = build_network(genotype, tiny_macro_config, rng=0)
        assert count_params(genotype, tiny_macro_config) == net.num_parameters()

    @given(ops_strategy)
    @settings(max_examples=15, deadline=None)
    def test_exact_match_property(self, ops):
        config = MacroConfig(init_channels=4, cells_per_stage=1, image_size=8)
        genotype = Genotype(ops)
        net = build_network(genotype, config, rng=0)
        assert count_params(genotype, config) == net.num_parameters()


class TestPaperScale:
    def test_all_conv3x3_near_nasbench_numbers(self):
        # NAS-Bench-201's conv-dense CIFAR-10 architectures report
        # ~1.0-1.5 M params and ~150-220 MFLOPs; TE-NAS's Table I entry is
        # 1.317 M / 188.66 M.
        g = Genotype(("nor_conv_3x3",) * 6)
        params = count_params(g, MacroConfig.full())
        flops = count_flops(g, MacroConfig.full())
        assert 1.0e6 < params < 1.6e6
        assert 150e6 < flops < 230e6

    def test_disconnected_has_fixed_cost_only(self):
        g = Genotype(("none",) * 6)
        flops = count_flops(g, MacroConfig.full())
        assert 0 < flops < 30e6  # stem + reductions + head only


class TestMonotonicity:
    @given(ops_strategy, st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_upgrading_edge_to_conv3x3_never_decreases_cost(self, ops, edge):
        g = Genotype(ops)
        upgraded = g.with_op(edge, "nor_conv_3x3")
        cfg = MacroConfig.full()
        assert count_flops(upgraded, cfg) >= count_flops(g, cfg)
        assert count_params(upgraded, cfg) >= count_params(g, cfg)

    def test_flops_scale_with_cells(self):
        g = Genotype(("nor_conv_3x3",) * 6)
        small = count_flops(g, MacroConfig(init_channels=16, cells_per_stage=1))
        large = count_flops(g, MacroConfig(init_channels=16, cells_per_stage=5))
        assert large > 3 * small

    def test_flops_scale_quadratically_with_channels(self):
        g = Genotype(("nor_conv_3x3",) * 6)
        c8 = count_flops(g, MacroConfig(init_channels=8, cells_per_stage=1))
        c16 = count_flops(g, MacroConfig(init_channels=16, cells_per_stage=1))
        assert 3.0 < c16 / c8 < 4.5  # ~4x (cell terms quadratic in C)
