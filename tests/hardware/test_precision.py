"""int8 deployment path: precision-aware cost model, latency, reports."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.costmodel import PRECISIONS, CycleCostModel
from repro.hardware.deploy import DeploymentReport, deployment_report
from repro.hardware.device import NUCLEO_F746ZG, NUCLEO_L432KC, RP2040_PICO
from repro.hardware.latency import LatencyEstimator, measure_ground_truth_ms
from repro.hardware.layers import LayerOp
from repro.hardware.profiler import OnDeviceProfiler
from repro.searchspace.network import MacroConfig

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)

CONV = LayerOp("conv", 16, 16, 16, 16, kernel=3)
LINEAR = LayerOp("linear", 64, 10, 1, 1)


class TestDeviceMacCycles:
    def test_float_default(self):
        assert NUCLEO_F746ZG.mac_cycles() == NUCLEO_F746ZG.cycles_per_mac

    def test_int8_explicit(self):
        assert NUCLEO_F746ZG.mac_cycles("int8") == 0.6

    def test_int8_fallback_halves(self):
        from repro.hardware.device import MCUDevice
        d = MCUDevice(name="x", core="m4", clock_hz=1e8, sram_bytes=1,
                      flash_bytes=1, cycles_per_mac=2.0)
        assert d.mac_cycles("int8") == 1.0

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            NUCLEO_F746ZG.mac_cycles("int4")


class TestCostModelPrecision:
    def test_rejects_unknown_precision(self):
        with pytest.raises(HardwareModelError):
            CycleCostModel(NUCLEO_F746ZG, precision="fp16")

    def test_element_bytes(self):
        assert CycleCostModel(NUCLEO_F746ZG).element_bytes == 4
        assert CycleCostModel(NUCLEO_F746ZG, precision="int8").element_bytes == 1

    @pytest.mark.parametrize("device", [NUCLEO_F746ZG, NUCLEO_L432KC,
                                        RP2040_PICO])
    def test_int8_conv_faster(self, device):
        f32 = CycleCostModel(device).layer_cycles(CONV)
        i8 = CycleCostModel(device, precision="int8").layer_cycles(CONV)
        assert i8 < f32

    def test_pico_gains_most_from_int8(self):
        """Soft-float M0+ sees the largest quantization speedup."""
        def speedup(device):
            f32 = CycleCostModel(device).layer_cycles(CONV)
            i8 = CycleCostModel(device, precision="int8").layer_cycles(CONV)
            return f32 / i8
        assert speedup(RP2040_PICO) > speedup(NUCLEO_F746ZG)

    def test_linear_includes_requant_epilogue(self):
        f32 = CycleCostModel(NUCLEO_F746ZG)
        i8 = CycleCostModel(NUCLEO_F746ZG, precision="int8")
        # MAC savings dominate, but the epilogue difference must be present:
        # at equal MAC cost the int8 layer would be *slower* per element.
        assert (i8._epilogue_cycles_per_element()
                > f32._epilogue_cycles_per_element())

    def test_int8_shrinks_working_set_below_spill(self):
        """A layer that spills at float32 can fit fast memory at int8."""
        big = LayerOp("conv", 64, 64, 32, 32, kernel=3)
        f32 = CycleCostModel(NUCLEO_F746ZG)
        in_elems = big.c_in * big.height * big.width
        weight_bytes = big.c_in * big.c_out * 9
        f32_ws = (in_elems + big.out_elements) * 4 + weight_bytes * 4
        i8_ws = (in_elems + big.out_elements) * 1 + weight_bytes * 1
        assert f32_ws > NUCLEO_F746ZG.fast_memory_bytes
        assert f32._spill_factor(f32_ws) > 1.0
        assert f32._spill_factor(i8_ws) >= 1.0


class TestProfilerPrecision:
    def test_profiler_exposes_precision(self):
        assert OnDeviceProfiler(NUCLEO_F746ZG).precision == "float32"
        p = OnDeviceProfiler(NUCLEO_F746ZG, precision="int8")
        assert p.precision == "int8"

    def test_int8_measurements_cheaper(self):
        f32 = OnDeviceProfiler(NUCLEO_F746ZG)
        i8 = OnDeviceProfiler(NUCLEO_F746ZG, precision="int8")
        assert i8.measure_layer_ms(CONV) < f32.measure_layer_ms(CONV)

    def test_float32_seed_stream_unchanged(self):
        """Adding precision must not disturb historical float32 LUTs."""
        a = OnDeviceProfiler(NUCLEO_F746ZG).measure_layer_ms(CONV)
        b = OnDeviceProfiler(NUCLEO_F746ZG, precision="float32").measure_layer_ms(CONV)
        assert a == b


class TestLatencyPrecision:
    @pytest.fixture(scope="class")
    def estimators(self):
        return (
            LatencyEstimator(NUCLEO_F746ZG, config=TINY),
            LatencyEstimator(NUCLEO_F746ZG, config=TINY, precision="int8"),
        )

    def test_int8_estimates_faster(self, estimators, heavy_genotype):
        f32, i8 = estimators
        assert i8.estimate_ms(heavy_genotype) < f32.estimate_ms(heavy_genotype)
        assert i8.precision == "int8"

    def test_int8_estimator_still_accurate(self, estimators, heavy_genotype):
        _, i8 = estimators
        assert i8.relative_error(heavy_genotype) < 0.15

    def test_ground_truth_precision(self, heavy_genotype):
        f32 = measure_ground_truth_ms(heavy_genotype, config=TINY)
        i8 = measure_ground_truth_ms(heavy_genotype, config=TINY,
                                     precision="int8")
        assert i8 < f32


class TestDeploymentReport:
    @pytest.fixture(scope="class")
    def report(self, heavy_genotype):
        return deployment_report(heavy_genotype, NUCLEO_F746ZG, config=TINY)

    def test_speedup_above_one(self, report):
        assert report.int8_speedup > 1.0

    def test_arena_int8_quarter(self, report):
        assert report.arena_int8_bytes * 4 == report.arena_float32_bytes

    def test_tiny_config_deployable(self, report):
        assert report.fits_sram
        assert report.fits_flash
        assert report.deployable

    def test_summary_mentions_verdict(self, report):
        assert "DEPLOYABLE" in report.summary()
        assert NUCLEO_F746ZG.name in report.summary()

    def test_quantization_metrics_present(self, report):
        assert report.weight_sqnr_db > 20.0  # int8 keeps ~6 bits of signal
        assert report.total_params > 0

    def test_not_deployable_on_microscopic_board(self, heavy_genotype):
        from repro.hardware.device import MCUDevice
        crumb = MCUDevice(name="crumb", core="m0", clock_hz=48e6,
                          sram_bytes=2 * 1024, flash_bytes=16 * 1024,
                          cycles_per_mac=20.0, simd_width=1)
        report = deployment_report(heavy_genotype, crumb, config=TINY)
        assert not report.deployable
        assert "DOES NOT FIT" in report.summary()

    def test_estimators_shareable(self, heavy_genotype, light_genotype):
        f32 = LatencyEstimator(NUCLEO_F746ZG, config=TINY)
        i8 = LatencyEstimator(NUCLEO_F746ZG, config=TINY, precision="int8")
        a = deployment_report(heavy_genotype, NUCLEO_F746ZG, config=TINY,
                              float_estimator=f32, int8_estimator=i8)
        b = deployment_report(light_genotype, NUCLEO_F746ZG, config=TINY,
                              float_estimator=f32, int8_estimator=i8)
        assert a.latency_int8_ms > b.latency_int8_ms  # heavy cell is slower
