"""int8 post-training quantization."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.errors import HardwareModelError
from repro.hardware.quantize import (
    QuantizedModule,
    dequantize_array,
    quantization_report,
    quantization_scale,
    quantize_array,
    quantized_logit_error,
)


def small_model(seed=0):
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=seed),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4, rng=seed + 1),
    )


class TestCodec:
    def test_roundtrip_error_bounded_by_half_scale(self, rng):
        x = rng.normal(size=(100,))
        codes, scale = quantize_array(x)
        recon = dequantize_array(codes, scale)
        assert np.abs(recon - x).max() <= scale / 2 + 1e-12

    def test_codes_in_int8_range(self, rng):
        codes, _ = quantize_array(rng.normal(size=(50,)) * 100)
        assert codes.dtype == np.int8
        assert codes.max() <= 127 and codes.min() >= -127

    def test_peak_maps_to_127(self):
        x = np.array([-2.0, 1.0])
        codes, scale = quantize_array(x)
        assert codes[0] == -127
        assert scale == pytest.approx(2.0 / 127)

    def test_zero_array_scale_one(self):
        assert quantization_scale(np.zeros(5)) == 1.0

    def test_explicit_scale_respected(self, rng):
        x = rng.normal(size=(10,))
        codes, scale = quantize_array(x, scale=0.5)
        assert scale == 0.5

    def test_invalid_scale_rejected(self):
        with pytest.raises(HardwareModelError):
            quantize_array(np.ones(3), scale=0.0)


class TestQuantizedModule:
    def test_weights_become_grid_points(self):
        model = small_model()
        quantized = QuantizedModule(model)
        for p in model.parameters():
            scale = quantized.scales[id(p)]
            codes = p.data / scale
            assert np.allclose(codes, np.round(codes), atol=1e-9)

    def test_inference_close_to_float(self, rng):
        float_model = small_model(seed=3)
        quant_model = QuantizedModule(small_model(seed=3))
        images = rng.normal(size=(4, 3, 8, 8))
        error = quantized_logit_error(float_model, quant_model, images)
        with_logits = float_model
        with_logits.train(False)
        from repro.autograd import no_grad
        with no_grad():
            magnitude = np.abs(with_logits(Tensor(images)).data).mean()
        assert error < 0.1 * max(magnitude, 1e-6)

    def test_predictions_usually_preserved(self, rng):
        float_model = small_model(seed=5)
        quant_model = QuantizedModule(small_model(seed=5))
        images = rng.normal(size=(16, 3, 8, 8))
        float_model.train(False), quant_model.train(False)
        from repro.autograd import no_grad
        with no_grad():
            a = float_model(Tensor(images)).data.argmax(axis=1)
            b = quant_model(Tensor(images)).data.argmax(axis=1)
        assert (a == b).mean() >= 0.75


class TestReport:
    def test_footprint_and_compression(self):
        model = small_model()
        report = quantization_report(model)
        assert report.total_params == model.num_parameters()
        assert report.flash_bytes_int8 == report.total_params
        assert report.compression == pytest.approx(4.0)

    def test_sqnr_reasonable_for_gaussian_weights(self):
        report = quantization_report(small_model())
        # Symmetric int8 on Gaussian data: ~30-50 dB typical.
        assert report.mean_sqnr_db > 25.0

    def test_parameterless_model_rejected(self):
        with pytest.raises(HardwareModelError):
            quantization_report(nn.Sequential(nn.ReLU()))
