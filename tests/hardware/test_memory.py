"""Peak-memory estimation (paper §IV extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.memory import MemoryEstimator, MemoryReport
from repro.proxies.flops import count_params
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

ops_strategy = st.tuples(*[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)])


@pytest.fixture(scope="module")
def estimator():
    return MemoryEstimator(MacroConfig.full())


class TestReport:
    def test_flash_tracks_params(self, estimator, heavy_genotype):
        report = estimator.report(heavy_genotype)
        assert report.params == count_params(heavy_genotype, MacroConfig.full())
        assert report.flash_bytes == report.params * 4 + estimator.code_bytes

    def test_peak_sram_positive(self, estimator, heavy_genotype):
        assert estimator.report(heavy_genotype).peak_sram_bytes > 0

    def test_fits_check(self):
        report = MemoryReport(peak_sram_bytes=100, flash_bytes=100, params=10)
        assert report.fits(200, 200)
        assert not report.fits(50, 200)
        assert not report.fits(200, 50)

    def test_int8_deployment_smaller(self, heavy_genotype):
        f32 = MemoryEstimator(MacroConfig.full(), element_bytes=4)
        i8 = MemoryEstimator(MacroConfig.full(), element_bytes=1)
        assert i8.report(heavy_genotype).peak_sram_bytes < \
            f32.report(heavy_genotype).peak_sram_bytes
        assert i8.report(heavy_genotype).flash_bytes < \
            f32.report(heavy_genotype).flash_bytes


class TestCellScheduling:
    def test_disconnected_cell_minimal(self, estimator, disconnected_genotype,
                                       heavy_genotype):
        empty = estimator.report(disconnected_genotype).peak_sram_bytes
        full = estimator.report(heavy_genotype).peak_sram_bytes
        assert empty <= full

    def test_more_live_nodes_more_sram(self, estimator):
        # Dense cell keeps more node buffers alive than a single path.
        chain = ["none"] * 6
        chain[0] = "nor_conv_3x3"   # 0->1
        chain[2] = "nor_conv_3x3"   # 1->2
        chain[5] = "nor_conv_3x3"   # 2->3
        dense = Genotype(("nor_conv_3x3",) * 6)
        assert estimator.report(dense).peak_sram_bytes >= \
            estimator.report(Genotype(tuple(chain))).peak_sram_bytes

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_peak_bounded_by_all_buffers(self, ops):
        # Peak can never exceed 4 node buffers + largest im2col scratch.
        config = MacroConfig.full()
        est = MemoryEstimator(config)
        peak = est.report(Genotype(ops)).peak_sram_bytes
        c, s = config.stage_channels[0], config.stage_sizes[0]
        bound = 4 * c * s * s * 4 + c * 9 * s * s * 4
        # Stage 1 dominates (largest spatial size x channels product).
        stem = (3 + c) * s * s * 4
        assert peak <= max(bound, stem) + 1

    def test_realistic_feasibility_f746zg(self, estimator, heavy_genotype):
        # float32 NB201 cells at 32x32 fit 320 KB SRAM but not 1 MB flash.
        report = estimator.report(heavy_genotype)
        assert report.peak_sram_bytes <= NUCLEO_F746ZG.sram_bytes
        assert report.flash_bytes > NUCLEO_F746ZG.flash_bytes  # needs int8
