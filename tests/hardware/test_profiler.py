"""Simulated on-device profiler and LUT construction."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.layers import LayerOp, network_layers
from repro.hardware.profiler import LatencyLUT, OnDeviceProfiler
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@pytest.fixture(scope="module")
def profiler():
    return OnDeviceProfiler(NUCLEO_F746ZG, repetitions=11, jitter_sigma=0.005, seed=0)


@pytest.fixture(scope="module")
def small_config():
    return MacroConfig(init_channels=4, cells_per_stage=1, image_size=8)


class TestMeasurement:
    def test_measurement_near_true_value(self, profiler):
        layer = LayerOp("conv", 16, 16, 16, 16, kernel=3)
        true_ms = CycleCostModel(NUCLEO_F746ZG).layer_ms(layer)
        measured = profiler.measure_layer_ms(layer)
        assert abs(measured - true_ms) / true_ms < 0.02

    def test_measurement_deterministic(self, profiler):
        layer = LayerOp("pool", 8, 8, 8, 8, kernel=3)
        assert profiler.measure_layer_ms(layer) == profiler.measure_layer_ms(layer)

    def test_different_seed_different_noise(self):
        layer = LayerOp("pool", 8, 8, 8, 8, kernel=3)
        a = OnDeviceProfiler(seed=0).measure_layer_ms(layer)
        b = OnDeviceProfiler(seed=1).measure_layer_ms(layer)
        assert a != b

    def test_overhead_measured(self, profiler):
        overhead = profiler.measure_network_overhead_ms()
        true_ms = NUCLEO_F746ZG.cycles_to_ms(NUCLEO_F746ZG.network_overhead_cycles)
        assert abs(overhead - true_ms) / true_ms < 0.02

    def test_invalid_repetitions(self):
        with pytest.raises(HardwareModelError):
            OnDeviceProfiler(repetitions=0)


class TestLutConstruction:
    def test_lut_covers_every_genotype(self, profiler, small_config):
        lut = profiler.build_lut(small_config)
        for idx in (0, 777, 15624):
            for layer in network_layers(Genotype.from_index(idx), small_config):
                assert layer in lut

    def test_lut_miss_raises_helpfully(self, profiler, small_config):
        lut = profiler.build_lut(small_config)
        foreign = LayerOp("conv", 128, 128, 64, 64, kernel=3)
        with pytest.raises(HardwareModelError, match="no entry"):
            lut.lookup(foreign)

    def test_extra_layers_profiled(self, profiler, small_config):
        extra = LayerOp("conv", 99, 99, 2, 2, kernel=1)
        lut = profiler.build_lut(small_config, extra_layers=[extra])
        assert extra in lut

    def test_overhead_recorded(self, profiler, small_config):
        assert profiler.build_lut(small_config).network_overhead_ms > 0

    def test_lut_len(self, profiler, small_config):
        assert len(profiler.build_lut(small_config)) > 10


class TestNetworkRuns:
    def test_profile_network_deterministic(self, profiler, small_config,
                                           heavy_genotype):
        a = profiler.profile_network_ms(heavy_genotype, small_config)
        b = profiler.profile_network_ms(heavy_genotype, small_config)
        assert a == b

    def test_heavier_network_slower(self, profiler, small_config,
                                    heavy_genotype, skip_only_genotype):
        heavy = profiler.profile_network_ms(heavy_genotype, small_config)
        light = profiler.profile_network_ms(skip_only_genotype, small_config)
        assert heavy > light
