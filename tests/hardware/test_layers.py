"""Symbolic layer enumeration of deployment networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.layers import LayerOp, network_layers, op_layer
from repro.proxies.flops import count_flops
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

ops_strategy = st.tuples(*[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)])


class TestLayerOp:
    def test_key_hashable_and_stable(self):
        a = LayerOp("conv", 16, 16, 32, 32, kernel=3)
        b = LayerOp("conv", 16, 16, 32, 32, kernel=3)
        assert a.key == b.key
        assert hash(a.key) == hash(b.key)

    def test_conv_macs(self):
        layer = LayerOp("conv", 8, 16, 4, 4, kernel=3)
        assert layer.macs == 8 * 16 * 9 * 16

    def test_non_conv_macs_zero(self):
        assert LayerOp("pool", 8, 8, 4, 4, kernel=3).macs == 0

    def test_out_elements(self):
        assert LayerOp("copy", 8, 8, 4, 4).out_elements == 128


class TestOpLayer:
    def test_none_maps_to_nothing(self):
        assert op_layer("none", 16, 32) is None

    def test_conv_mapping(self):
        layer = op_layer("nor_conv_3x3", 16, 32)
        assert layer.kind == "conv" and layer.kernel == 3

    def test_pool_and_copy(self):
        assert op_layer("avg_pool_3x3", 16, 32).kind == "pool"
        assert op_layer("skip_connect", 16, 32).kind == "copy"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            op_layer("mystery", 16, 32)


class TestNetworkLayers:
    def test_structure_all_none(self):
        layers = network_layers(Genotype(("none",) * 6), MacroConfig.full())
        kinds = [l.kind for l in layers]
        # stem + 2 reduction blocks (4 kernels + add each) + gap + linear.
        assert kinds[0] == "conv"
        assert kinds[-2:] == ["gap", "linear"]
        assert kinds.count("add") == 2  # one per reduction block

    def test_none_edges_execute_nothing(self):
        base = network_layers(Genotype(("none",) * 6))
        one_conv = network_layers(
            Genotype(("none",) * 3 + ("nor_conv_3x3",) + ("none",) * 2)
        )
        extra = len(one_conv) - len(base)
        assert extra == MacroConfig.full().cells_per_stage * 3  # 1 conv/cell

    def test_add_kernels_counted(self):
        # Two incoming edges at node 3 -> one add per cell.
        ops = ["none"] * 6
        ops[3] = "skip_connect"   # 0->3
        ops[5] = "nor_conv_1x1"   # 2->3 ... but node2 unreachable, still executes
        layers = network_layers(Genotype(tuple(ops)),
                                MacroConfig(init_channels=4, cells_per_stage=1))
        adds = [l for l in layers if l.kind == "add"]
        # 3 cells x 1 add + 2 reduction adds.
        assert len(adds) == 5

    def test_stage_shapes(self):
        layers = network_layers(Genotype(("nor_conv_3x3",) * 6), MacroConfig.full())
        conv_shapes = {(l.c_in, l.height) for l in layers if l.kind == "conv"}
        assert (16, 32) in conv_shapes
        assert (32, 16) in conv_shapes
        assert (64, 8) in conv_shapes

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_layer_macs_sum_close_to_count_flops(self, ops):
        """MAC totals from the layer walk agree with the analytic counter
        (pool/add FLOPs differ slightly; conv MACs dominate)."""
        g = Genotype(ops)
        cfg = MacroConfig.full()
        layers = network_layers(g, cfg)
        mac_total = sum(l.macs for l in layers)
        flops = count_flops(g, cfg)
        # count_flops adds pooling contributions; MACs never exceed it.
        assert mac_total <= flops
        assert flops - mac_total < 0.12 * flops + 1e7
