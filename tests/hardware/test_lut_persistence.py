"""Latency LUT persistence: profile once, reuse across sessions."""

import pytest

from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.hardware.profiler import LatencyLUT, OnDeviceProfiler
from repro.searchspace.network import MacroConfig

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)


@pytest.fixture(scope="module")
def lut():
    return OnDeviceProfiler(NUCLEO_F746ZG).build_lut(TINY)


class TestRoundTrip:
    def test_dict_round_trip(self, lut):
        clone = LatencyLUT.from_dict(lut.to_dict())
        assert clone.device_name == lut.device_name
        assert clone.network_overhead_ms == lut.network_overhead_ms
        assert clone.entries == lut.entries

    def test_json_round_trip(self, lut, tmp_path):
        path = str(tmp_path / "f746zg.json")
        lut.save_json(path)
        clone = LatencyLUT.load_json(path)
        assert clone.entries == lut.entries

    def test_key_types_restored(self, lut):
        clone = LatencyLUT.from_dict(lut.to_dict())
        for key in clone.entries:
            assert isinstance(key[0], str)
            assert all(isinstance(part, int) for part in key[1:])

    def test_estimator_accepts_loaded_lut(self, lut, heavy_genotype, tmp_path):
        path = str(tmp_path / "profile.json")
        lut.save_json(path)
        fresh = LatencyEstimator(NUCLEO_F746ZG, config=TINY)
        loaded = LatencyEstimator(NUCLEO_F746ZG, config=TINY,
                                  lut=LatencyLUT.load_json(path))
        assert (loaded.estimate_ms(heavy_genotype)
                == pytest.approx(fresh.estimate_ms(heavy_genotype)))

    def test_dict_is_json_safe(self, lut):
        import json
        text = json.dumps(lut.to_dict())
        assert "nucleo-f746zg" in text
