"""Deployment-graph optimisation: DCE, copy elision, accumulator fusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.graphopt import (
    live_nodes,
    optimization_stats,
    optimize_cell,
    optimized_network_layers,
)
from repro.hardware.layers import network_layers
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)

genotypes = st.tuples(*([st.sampled_from(CANDIDATE_OPS)] * 6)).map(Genotype)


class TestLiveNodes:
    def test_fully_connected(self, heavy_genotype):
        assert live_nodes(heavy_genotype) == {0, 1, 2, 3}

    def test_disconnected(self, disconnected_genotype):
        assert live_nodes(disconnected_genotype) == set()

    def test_dead_interior_branch(self):
        """Edge 0->1 feeds node 1, but node 1 never reaches the output."""
        genotype = Genotype(("nor_conv_3x3", "none", "none",
                             "skip_connect", "none", "none"))
        assert live_nodes(genotype) == {0, 3}

    def test_node_without_source_is_dead(self):
        """node2 -> node3 exists but nothing feeds node 2."""
        genotype = Genotype(("none", "none", "none",
                             "skip_connect", "none", "nor_conv_3x3"))
        assert 2 not in live_nodes(genotype)


class TestOptimizeCell:
    def test_no_copies_survive(self, skip_only_genotype):
        cell = optimize_cell(skip_only_genotype, 8, 8)
        assert not any(layer.kind == "copy" for layer in cell.layers)
        assert cell.copies_elided == 6

    def test_skip_only_cell_is_three_adds(self, skip_only_genotype):
        cell = optimize_cell(skip_only_genotype, 8, 8)
        kinds = [layer.kind for layer in cell.layers]
        assert kinds == ["add", "add", "add"]

    def test_conv_accumulation_fused(self, heavy_genotype):
        # heavy: node2 gets convs from 0 and 1 -> one fused; node3 gets
        # skip + conv + conv -> one fused, one add for the skip.
        cell = optimize_cell(heavy_genotype, 8, 8)
        assert cell.adds_fused == 2
        assert sum(layer.kind == "add" for layer in cell.layers) == 1

    def test_dead_branch_convs_removed(self):
        genotype = Genotype(("nor_conv_3x3", "none", "none",
                             "nor_conv_3x3", "none", "none"))
        cell = optimize_cell(genotype, 8, 8)
        assert cell.dead_ops_removed == 1  # the conv into dead node 1
        assert sum(layer.kind == "conv" for layer in cell.layers) == 1

    def test_disconnected_cell_empty(self, disconnected_genotype):
        cell = optimize_cell(disconnected_genotype, 8, 8)
        assert cell.layers == ()


class TestNetworkLevel:
    def test_fewer_or_equal_kernels(self, heavy_genotype):
        naive = network_layers(heavy_genotype, TINY)
        optimized = optimized_network_layers(heavy_genotype, TINY)
        assert len(optimized) <= len(naive)

    def test_stats_consistent(self, heavy_genotype):
        stats = optimization_stats(heavy_genotype, TINY)
        assert stats.kernels_before == len(network_layers(heavy_genotype, TINY))
        assert stats.kernels_after == len(
            optimized_network_layers(heavy_genotype, TINY))
        assert stats.kernels_removed >= 0
        assert "kernels" in stats.describe()

    def test_optimized_latency_never_worse(self, heavy_genotype,
                                           light_genotype,
                                           skip_only_genotype):
        model = CycleCostModel(NUCLEO_F746ZG)
        for genotype in (heavy_genotype, light_genotype, skip_only_genotype):
            naive = model.network_cycles(network_layers(genotype, TINY))
            optimized = model.network_cycles(
                optimized_network_layers(genotype, TINY))
            assert optimized <= naive

    def test_stem_and_head_preserved(self, light_genotype):
        optimized = optimized_network_layers(light_genotype, TINY)
        assert optimized[0].kind == "conv"          # stem
        assert optimized[-1].kind == "linear"       # classifier
        assert optimized[-2].kind == "gap"


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(genotype=genotypes)
    def test_never_more_kernels_and_no_copies(self, genotype):
        naive = network_layers(genotype, TINY)
        optimized = optimized_network_layers(genotype, TINY)
        assert len(optimized) <= len(naive)
        assert not any(layer.kind == "copy" for layer in optimized)

    @settings(max_examples=40, deadline=None)
    @given(genotype=genotypes)
    def test_conv_work_never_increases(self, genotype):
        """The rewrites remove kernels; they never add MAC work."""
        naive_macs = sum(l.macs for l in network_layers(genotype, TINY))
        optimized_macs = sum(
            l.macs for l in optimized_network_layers(genotype, TINY))
        assert optimized_macs <= naive_macs

    @settings(max_examples=30, deadline=None)
    @given(genotype=genotypes)
    def test_latency_never_worse(self, genotype):
        model = CycleCostModel(NUCLEO_F746ZG)
        naive = model.network_cycles(network_layers(genotype, TINY))
        optimized = model.network_cycles(
            optimized_network_layers(genotype, TINY))
        assert optimized <= naive
