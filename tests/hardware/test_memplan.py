"""Tensor-arena planning: liveness extraction and offset assignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hardware.memplan import (
    PLANNING_STRATEGIES,
    ArenaReport,
    BufferLifetime,
    arena_report,
    liveness_lower_bound,
    plan_memory,
    tensor_lifetimes,
)
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS

pytestmark = pytest.mark.hw

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)

genotypes = st.tuples(*([st.sampled_from(CANDIDATE_OPS)] * 6)).map(Genotype)


class TestBufferLifetime:
    def test_rejects_empty_buffer(self):
        with pytest.raises(HardwareModelError):
            BufferLifetime("x", 0, 0, 1)

    def test_rejects_negative_interval(self):
        with pytest.raises(HardwareModelError):
            BufferLifetime("x", 4, 5, 3)

    def test_time_overlap(self):
        a = BufferLifetime("a", 4, 0, 3)
        assert a.overlaps_in_time(BufferLifetime("b", 4, 3, 5))
        assert not a.overlaps_in_time(BufferLifetime("c", 4, 4, 5))


class TestTensorLifetimes:
    def test_heavy_cell_produces_buffers(self, heavy_genotype):
        buffers = tensor_lifetimes(heavy_genotype, TINY)
        names = {b.name for b in buffers}
        assert "input" in names
        assert "stem" in names
        assert "logits" in names
        assert any("im2col" in n for n in names)

    def test_buffer_names_unique(self, heavy_genotype):
        buffers = tensor_lifetimes(heavy_genotype, TINY)
        names = [b.name for b in buffers]
        assert len(names) == len(set(names))

    def test_disconnected_cell_is_pass_through(self, disconnected_genotype):
        buffers = tensor_lifetimes(disconnected_genotype, TINY)
        assert not any("node" in b.name for b in buffers)

    def test_element_bytes_scales_sizes(self, heavy_genotype):
        f32 = tensor_lifetimes(heavy_genotype, TINY, element_bytes=4)
        i8 = tensor_lifetimes(heavy_genotype, TINY, element_bytes=1)
        by_name_f32 = {b.name: b.size_bytes for b in f32}
        by_name_i8 = {b.name: b.size_bytes for b in i8}
        assert by_name_f32.keys() == by_name_i8.keys()
        for name, size in by_name_f32.items():
            assert size == 4 * by_name_i8[name]

    def test_invalid_element_bytes(self, heavy_genotype):
        with pytest.raises(HardwareModelError):
            tensor_lifetimes(heavy_genotype, TINY, element_bytes=0)

    def test_dead_interior_path_handled(self):
        """Output only reachable via a node that never receives an edge."""
        genotype = Genotype(
            ("none", "none", "nor_conv_3x3", "none", "none", "nor_conv_3x3")
        )
        buffers = tensor_lifetimes(genotype, TINY)
        assert buffers  # stem / input / head still exist
        plan = plan_memory(buffers)
        plan.validate()

    def test_more_cells_more_buffers(self, heavy_genotype):
        one = tensor_lifetimes(heavy_genotype, TINY)
        deep_config = MacroConfig(init_channels=4, cells_per_stage=3,
                                  num_classes=10, input_channels=3,
                                  image_size=8)
        three = tensor_lifetimes(heavy_genotype, deep_config)
        assert len(three) > len(one)


class TestPlanMemory:
    @pytest.fixture(scope="class")
    def lifetimes(self, heavy_genotype):
        return tensor_lifetimes(heavy_genotype, TINY)

    @pytest.mark.parametrize("strategy", PLANNING_STRATEGIES)
    def test_all_strategies_validate(self, lifetimes, strategy):
        plan = plan_memory(lifetimes, strategy)
        plan.validate()
        assert plan.arena_bytes > 0
        assert plan.num_buffers == len(lifetimes)

    def test_unknown_strategy_rejected(self, lifetimes):
        with pytest.raises(HardwareModelError):
            plan_memory(lifetimes, "magic")

    def test_no_reuse_is_total_size(self, lifetimes):
        plan = plan_memory(lifetimes, "no_reuse")
        assert plan.arena_bytes == sum(b.size_bytes for b in lifetimes)

    def test_reuse_beats_no_reuse(self, lifetimes):
        no_reuse = plan_memory(lifetimes, "no_reuse").arena_bytes
        for strategy in ("first_fit", "greedy_by_size"):
            assert plan_memory(lifetimes, strategy).arena_bytes < no_reuse

    def test_plans_respect_lower_bound(self, lifetimes):
        bound = liveness_lower_bound(lifetimes)
        for strategy in PLANNING_STRATEGIES:
            assert plan_memory(lifetimes, strategy).arena_bytes >= bound

    def test_empty_lifetimes(self):
        plan = plan_memory([], "first_fit")
        assert plan.arena_bytes == 0
        assert liveness_lower_bound([]) == 0

    def test_validate_catches_collision(self, lifetimes):
        plan = plan_memory(lifetimes, "first_fit")
        overlapping = [b for b in lifetimes if b.overlaps_in_time(lifetimes[0])]
        if len(overlapping) >= 2:
            plan.offsets[overlapping[1].name] = plan.offsets[overlapping[0].name]
            with pytest.raises(HardwareModelError):
                plan.validate()

    def test_validate_catches_escape(self, lifetimes):
        plan = plan_memory(lifetimes, "first_fit")
        plan.offsets[lifetimes[0].name] = plan.arena_bytes
        with pytest.raises(HardwareModelError):
            plan.validate()


class TestLowerBound:
    def test_simple_sequence(self):
        buffers = [
            BufferLifetime("a", 10, 0, 1),
            BufferLifetime("b", 20, 1, 2),
            BufferLifetime("c", 5, 3, 4),
        ]
        assert liveness_lower_bound(buffers) == 30

    def test_disjoint_buffers(self):
        buffers = [
            BufferLifetime("a", 10, 0, 0),
            BufferLifetime("b", 20, 1, 1),
        ]
        assert liveness_lower_bound(buffers) == 20
        plan = plan_memory(buffers, "greedy_by_size")
        assert plan.arena_bytes == 20  # perfect reuse


class TestLowerBoundVsValidate:
    """``liveness_lower_bound`` and ``MemoryPlan.validate`` pin the same
    invariant from two sides: no valid plan can beat the bound, and any
    plan that *appears* to beat it must fail validation."""

    def test_bound_is_max_concurrent_live_bytes(self):
        # Timesteps 2-3 hold a+b+c live simultaneously: 10+20+40 = 70.
        buffers = [
            BufferLifetime("a", 10, 0, 3),
            BufferLifetime("b", 20, 1, 4),
            BufferLifetime("c", 40, 2, 3),
            BufferLifetime("d", 15, 5, 6),
        ]
        assert liveness_lower_bound(buffers) == 70

    def test_perfect_packing_meets_bound_and_validates(self):
        # Two disjoint-in-time pairs: the bound (30) is achievable, and
        # greedy packing reaches it with a valid plan.
        buffers = [
            BufferLifetime("a", 10, 0, 1),
            BufferLifetime("b", 20, 0, 1),
            BufferLifetime("c", 10, 2, 3),
            BufferLifetime("d", 20, 2, 3),
        ]
        bound = liveness_lower_bound(buffers)
        plan = plan_memory(buffers, "greedy_by_size")
        plan.validate()
        assert plan.arena_bytes == bound == 30

    def test_sub_bound_arena_fails_validation(self):
        # Force an arena below the liveness bound by aliasing two live
        # buffers: validate must catch the overlap the bound forbids.
        buffers = [
            BufferLifetime("a", 10, 0, 2),
            BufferLifetime("b", 10, 1, 3),
        ]
        plan = plan_memory(buffers, "no_reuse")
        plan.validate()
        assert plan.arena_bytes >= liveness_lower_bound(buffers) == 20
        plan.offsets["b"] = plan.offsets["a"]  # "arena" now 10 < bound
        with pytest.raises(HardwareModelError):
            plan.validate()

    def test_validate_requires_every_buffer_placed(self):
        buffers = [BufferLifetime("a", 10, 0, 1),
                   BufferLifetime("b", 20, 1, 2)]
        plan = plan_memory(buffers, "first_fit")
        del plan.offsets["b"]
        with pytest.raises(HardwareModelError):
            plan.validate()


class TestArenaReport:
    def test_report_fields_consistent(self, heavy_genotype):
        report = arena_report(heavy_genotype, TINY)
        assert isinstance(report, ArenaReport)
        assert report.lower_bound_bytes <= report.best_bytes
        assert report.best_bytes <= report.no_reuse_bytes
        assert 0.0 <= report.reuse_saving < 1.0
        assert report.gap_to_lower_bound >= 0.0

    def test_int8_quarter_of_float32(self, heavy_genotype):
        f32 = arena_report(heavy_genotype, TINY, element_bytes=4)
        i8 = arena_report(heavy_genotype, TINY, element_bytes=1)
        assert i8.no_reuse_bytes * 4 == f32.no_reuse_bytes
        assert i8.lower_bound_bytes * 4 == f32.lower_bound_bytes


class TestPlannerProperties:
    @settings(max_examples=25, deadline=None)
    @given(genotype=genotypes)
    def test_any_genotype_plans_validate(self, genotype):
        lifetimes = tensor_lifetimes(genotype, TINY)
        bound = liveness_lower_bound(lifetimes)
        for strategy in PLANNING_STRATEGIES:
            plan = plan_memory(lifetimes, strategy)
            plan.validate()
            assert plan.arena_bytes >= bound

    @settings(max_examples=25, deadline=None)
    @given(genotype=genotypes)
    def test_greedy_never_worse_than_no_reuse(self, genotype):
        lifetimes = tensor_lifetimes(genotype, TINY)
        no_reuse = plan_memory(lifetimes, "no_reuse").arena_bytes
        greedy = plan_memory(lifetimes, "greedy_by_size").arena_bytes
        assert greedy <= no_reuse

    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1000),
                       min_size=1, max_size=12),
        spans=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 10)),
                       min_size=1, max_size=12),
    )
    def test_synthetic_intervals_pack_validly(self, sizes, spans):
        n = min(len(sizes), len(spans))
        lifetimes = [
            BufferLifetime(f"b{i}", sizes[i], spans[i][0],
                           spans[i][0] + spans[i][1])
            for i in range(n)
        ]
        bound = liveness_lower_bound(lifetimes)
        for strategy in ("first_fit", "greedy_by_size"):
            plan = plan_memory(lifetimes, strategy)
            plan.validate()
            assert plan.arena_bytes >= bound
