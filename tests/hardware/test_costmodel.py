"""Cycle cost model: kernel costs and MCU-specific biases."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.hardware.layers import LayerOp


@pytest.fixture(scope="module")
def model():
    return CycleCostModel(NUCLEO_F746ZG)


class TestKernelCosts:
    def test_conv_cost_scales_with_macs(self, model):
        small = model.layer_cycles(LayerOp("conv", 16, 16, 8, 8, kernel=3))
        big = model.layer_cycles(LayerOp("conv", 16, 16, 16, 16, kernel=3))
        assert big > 2.5 * small

    def test_conv1x1_cheaper_per_mac_than_3x3(self, model):
        # Excluding the fixed invocation overhead, 1x1 convs skip im2col and
        # are cheaper per MAC (this is the latency-vs-FLOPs MCU bias).
        conv3 = LayerOp("conv", 16, 16, 32, 32, kernel=3)
        conv1 = LayerOp("conv", 16, 16, 32, 32, kernel=1)
        overhead = model.device.layer_overhead_cycles
        per_mac_3 = (model.layer_cycles(conv3) - overhead) / conv3.macs
        per_mac_1 = (model.layer_cycles(conv1) - overhead) / conv1.macs
        assert per_mac_1 < per_mac_3

    def test_pool_is_memory_bound(self, model):
        pool = LayerOp("pool", 16, 16, 8, 8, kernel=3)
        cycles = model.layer_cycles(pool)
        assert cycles > model.device.layer_overhead_cycles

    def test_copy_cheaper_than_pool(self, model):
        pool = model.layer_cycles(LayerOp("pool", 16, 16, 8, 8, kernel=3))
        copy = model.layer_cycles(LayerOp("copy", 16, 16, 8, 8))
        assert copy < pool

    def test_linear_cost(self, model):
        layer = LayerOp("linear", 64, 10, 1, 1)
        cycles = model.layer_cycles(layer)
        assert cycles >= 640 * model.device.cycles_per_mac

    def test_gap_cost_positive(self, model):
        assert model.layer_cycles(LayerOp("gap", 64, 64, 8, 8)) > 0

    def test_unknown_kind_rejected(self, model):
        with pytest.raises(HardwareModelError):
            model.layer_cycles(LayerOp("fft", 4, 4, 4, 4))


class TestDeviceEffects:
    def test_simd_utilisation_odd_channels_penalised(self, model):
        even = LayerOp("conv", 16, 16, 8, 8, kernel=3)
        odd = LayerOp("conv", 15, 16, 8, 8, kernel=3)
        per_mac_even = model.layer_cycles(even) / even.macs
        per_mac_odd = model.layer_cycles(odd) / odd.macs
        assert per_mac_odd > per_mac_even

    def test_spill_penalty_for_large_working_set(self, model):
        # 64 channels at 32x32 float32 ≈ 512 KB >> 64 KB fast memory.
        big = LayerOp("pool", 64, 64, 32, 32, kernel=3)
        small = LayerOp("pool", 4, 4, 8, 8, kernel=3)
        per_el_big = (model.layer_cycles(big)
                      - model.device.layer_overhead_cycles) / big.out_elements
        per_el_small = (model.layer_cycles(small)
                        - model.device.layer_overhead_cycles) / small.out_elements
        assert per_el_big > per_el_small

    def test_m4_slower_than_m7(self):
        m7 = CycleCostModel(NUCLEO_F746ZG)
        m4 = CycleCostModel(NUCLEO_F411RE)
        layer = LayerOp("conv", 16, 16, 16, 16, kernel=3)
        assert m4.device.cycles_to_ms(m4.layer_cycles(layer)) > \
            m7.device.cycles_to_ms(m7.layer_cycles(layer))


class TestNetworkCycles:
    def test_transition_stalls_increase_total(self, model):
        layers = [LayerOp("conv", 16, 16, 8, 8, kernel=3)] * 5
        with_stalls = model.network_cycles(layers, include_transition_stalls=True)
        without = model.network_cycles(layers, include_transition_stalls=False)
        assert with_stalls > without

    def test_network_overhead_included(self, model):
        assert model.network_cycles([]) == model.device.network_overhead_cycles

    def test_layer_ms_positive(self, model):
        assert model.layer_ms(LayerOp("conv", 8, 8, 4, 4, kernel=1)) > 0
