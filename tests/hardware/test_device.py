"""Device descriptors."""

import pytest

from repro.hardware.device import (
    MCUDevice,
    NUCLEO_F411RE,
    NUCLEO_F746ZG,
    NUCLEO_H743ZI,
    NUCLEO_L432KC,
    RP2040_PICO,
    get_device,
    known_devices,
    register_device,
)


class TestDescriptors:
    def test_f746zg_matches_board_spec(self):
        d = NUCLEO_F746ZG
        assert d.core == "cortex-m7"
        assert d.clock_hz == 216e6
        assert d.sram_bytes == 320 * 1024
        assert d.flash_bytes == 1024 * 1024

    def test_f411re_is_weaker(self):
        assert NUCLEO_F411RE.clock_hz < NUCLEO_F746ZG.clock_hz
        assert NUCLEO_F411RE.cycles_per_mac > NUCLEO_F746ZG.cycles_per_mac
        assert NUCLEO_F411RE.sram_bytes < NUCLEO_F746ZG.sram_bytes

    def test_registry(self):
        devices = known_devices()
        assert "nucleo-f746zg" in devices
        assert "nucleo-f411re" in devices

    def test_registry_returns_copy(self):
        devices = known_devices()
        devices.clear()
        assert known_devices()

    def test_cycle_ms_conversion_roundtrip(self):
        d = NUCLEO_F746ZG
        assert d.ms_to_cycles(d.cycles_to_ms(1e6)) == pytest.approx(1e6)

    def test_one_ms_at_216mhz(self):
        assert NUCLEO_F746ZG.cycles_to_ms(216_000) == pytest.approx(1.0)

    def test_frozen(self):
        import dataclasses
        with pytest.raises(dataclasses.FrozenInstanceError):
            NUCLEO_F746ZG.clock_hz = 1.0


class TestExtendedRegistry:
    def test_five_builtin_boards(self):
        devices = known_devices()
        for name in ("nucleo-f746zg", "nucleo-f411re", "nucleo-h743zi",
                     "nucleo-l432kc", "rp2040-pico"):
            assert name in devices

    def test_h743_dominates_f746(self):
        assert NUCLEO_H743ZI.clock_hz > NUCLEO_F746ZG.clock_hz
        assert NUCLEO_H743ZI.cycles_per_mac <= NUCLEO_F746ZG.cycles_per_mac
        assert NUCLEO_H743ZI.sram_bytes > NUCLEO_F746ZG.sram_bytes

    def test_l432_is_smallest_memory(self):
        smallest = min(known_devices().values(), key=lambda d: d.sram_bytes)
        assert smallest.name == NUCLEO_L432KC.name

    def test_pico_soft_float_macs(self):
        """No FPU: per-MAC cost is an order of magnitude above the M7s."""
        assert RP2040_PICO.cycles_per_mac >= 10 * NUCLEO_F746ZG.cycles_per_mac
        assert RP2040_PICO.simd_width == 1

    def test_get_device(self):
        assert get_device("nucleo-f746zg") is NUCLEO_F746ZG
        with pytest.raises(KeyError, match="unknown device"):
            get_device("esp32")

    def test_register_device(self):
        custom = MCUDevice(name="test-board", core="cortex-m33",
                           clock_hz=160e6, sram_bytes=512 * 1024,
                           flash_bytes=1024 * 1024)
        try:
            register_device(custom)
            assert get_device("test-board") is custom
            with pytest.raises(ValueError, match="already registered"):
                register_device(custom)
            replacement = MCUDevice(name="test-board", core="cortex-m33",
                                    clock_hz=200e6, sram_bytes=512 * 1024,
                                    flash_bytes=1024 * 1024)
            register_device(replacement, replace=True)
            assert get_device("test-board").clock_hz == 200e6
        finally:
            # Keep the global registry clean for other tests.
            from repro.hardware import device as device_module
            device_module._DEVICES.pop("test-board", None)
