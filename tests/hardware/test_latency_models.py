"""Alternative latency estimators (the A9 ablation's machinery)."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hardware.device import NUCLEO_F746ZG
from repro.hardware.latency_models import (
    FlopsProportionalModel,
    LinearFeatureModel,
    LUTModel,
    compare_models,
    default_calibration_sample,
    layer_features,
)
from repro.hardware.layers import LayerOp
from repro.hardware.profiler import OnDeviceProfiler
from repro.searchspace.network import MacroConfig

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)


@pytest.fixture(scope="module")
def profiler():
    return OnDeviceProfiler(NUCLEO_F746ZG)


@pytest.fixture(scope="module")
def calibration():
    return default_calibration_sample(8)


class TestLayerFeatures:
    def test_conv_has_patch_elements(self):
        conv3 = LayerOp("conv", 8, 8, 16, 16, kernel=3)
        features = layer_features(conv3)
        assert features[0] == conv3.macs
        assert features[2] == 8 * 9 * 16 * 16
        assert features[3] == 1.0

    def test_1x1_conv_no_patches(self):
        conv1 = LayerOp("conv", 8, 8, 16, 16, kernel=1)
        assert layer_features(conv1)[2] == 0

    def test_elementwise_no_macs(self):
        add = LayerOp("add", 8, 8, 16, 16)
        features = layer_features(add)
        assert features[0] == 0
        assert features[1] == add.out_elements


class TestFlopsProportional:
    def test_unfitted_raises(self, heavy_genotype):
        with pytest.raises(HardwareModelError, match="not fitted"):
            FlopsProportionalModel(config=TINY).estimate_ms(heavy_genotype)

    def test_too_few_calibration_networks(self):
        with pytest.raises(HardwareModelError):
            FlopsProportionalModel(config=TINY).fit(
                default_calibration_sample(1))

    def test_fit_and_estimate(self, calibration, heavy_genotype, profiler):
        model = FlopsProportionalModel(config=TINY, profiler=profiler)
        model.fit(calibration)
        assert model.estimate_ms(heavy_genotype) > 0

    def test_monotone_in_flops(self, calibration, profiler,
                               heavy_genotype, light_genotype):
        model = FlopsProportionalModel(config=TINY, profiler=profiler)
        model.fit(calibration)
        assert (model.estimate_ms(heavy_genotype)
                > model.estimate_ms(light_genotype))


class TestLinearFeature:
    def test_unfitted_raises(self, heavy_genotype):
        with pytest.raises(HardwareModelError, match="not fitted"):
            LinearFeatureModel(config=TINY).estimate_ms(heavy_genotype)

    def test_fit_from_lut_coverage(self, profiler, heavy_genotype):
        model = LinearFeatureModel(config=TINY, profiler=profiler).fit()
        estimate = model.estimate_ms(heavy_genotype)
        assert estimate > 0

    def test_layer_ms_roughly_tracks_profiler(self, profiler):
        model = LinearFeatureModel(config=TINY, profiler=profiler).fit()
        conv = LayerOp("conv", 8, 8, 8, 8, kernel=3)
        measured = profiler.measure_layer_ms(conv)
        predicted = model.layer_ms(conv)
        assert predicted == pytest.approx(measured, rel=0.6)

    def test_too_few_layers(self, profiler):
        with pytest.raises(HardwareModelError):
            LinearFeatureModel(config=TINY, profiler=profiler).fit(
                [LayerOp("add", 4, 4, 8, 8)] * 3)


class TestCompareModels:
    @pytest.fixture(scope="class")
    def accuracies(self, profiler, calibration):
        models = [
            FlopsProportionalModel(config=TINY, profiler=profiler).fit(calibration),
            LinearFeatureModel(config=TINY, profiler=profiler).fit(),
            LUTModel(NUCLEO_F746ZG, config=TINY),
        ]
        eval_archs = default_calibration_sample(10, rng=77)
        return compare_models(models, eval_archs, config=TINY,
                              profiler=profiler)

    def test_all_models_reported(self, accuracies):
        names = [a.name for a in accuracies]
        assert names == ["flops-proportional", "linear-feature", "lut (paper)"]

    def test_lut_most_accurate(self, accuracies):
        by_name = {a.name: a for a in accuracies}
        assert (by_name["lut (paper)"].mean_rel_error
                < by_name["linear-feature"].mean_rel_error)
        assert (by_name["lut (paper)"].mean_rel_error
                < by_name["flops-proportional"].mean_rel_error)

    def test_lut_error_small(self, accuracies):
        lut = next(a for a in accuracies if a.name == "lut (paper)")
        assert lut.mean_rel_error < 0.05
        assert lut.kendall_tau > 0.9

    def test_all_rank_positively(self, accuracies):
        """Even the crude models carry rank signal — FLOPs correlates."""
        assert all(a.kendall_tau > 0.3 for a in accuracies)
