"""LUT latency estimator vs ground truth (paper claim C4)."""

import pytest

from repro.hardware.device import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator, measure_ground_truth_ms
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space


@pytest.fixture(scope="module")
def estimator():
    config = MacroConfig(init_channels=8, cells_per_stage=2, image_size=16)
    return LatencyEstimator(NUCLEO_F746ZG, config=config)


class TestEstimates:
    def test_positive_and_cached(self, estimator, heavy_genotype):
        a = estimator.estimate_ms(heavy_genotype)
        b = estimator.estimate_ms(heavy_genotype)
        assert a > 0 and a == b

    def test_ordering_heavy_vs_light(self, estimator, heavy_genotype,
                                     light_genotype, skip_only_genotype):
        heavy = estimator.estimate_ms(heavy_genotype)
        light = estimator.estimate_ms(light_genotype)
        skim = estimator.estimate_ms(skip_only_genotype)
        assert heavy > light > skim

    def test_includes_constant_overhead(self, estimator, disconnected_genotype):
        assert estimator.estimate_ms(disconnected_genotype) > \
            estimator.lut.network_overhead_ms


class TestValidationAgainstGroundTruth:
    def test_error_small_across_random_sample(self, estimator):
        space = NasBench201Space()
        errors = [estimator.relative_error(g) for g in space.sample(12, rng=3)]
        assert max(errors) < 0.10  # paper: "accurate and reliable"
        assert sum(errors) / len(errors) < 0.05

    def test_estimate_below_truth_systematically(self, estimator, heavy_genotype):
        # Isolated-op profiling misses inter-layer stalls, so composition
        # slightly underestimates the full run.
        assert estimator.estimate_ms(heavy_genotype) < \
            estimator.ground_truth_ms(heavy_genotype)


class TestGroundTruthHelper:
    def test_noise_free_value(self, heavy_genotype):
        cfg = MacroConfig(init_channels=8, cells_per_stage=2, image_size=16)
        a = measure_ground_truth_ms(heavy_genotype, NUCLEO_F746ZG, cfg)
        b = measure_ground_truth_ms(heavy_genotype, NUCLEO_F746ZG, cfg)
        assert a == b

    def test_slower_device_higher_latency(self, heavy_genotype):
        cfg = MacroConfig(init_channels=8, cells_per_stage=2, image_size=16)
        m7 = measure_ground_truth_ms(heavy_genotype, NUCLEO_F746ZG, cfg)
        m4 = measure_ground_truth_ms(heavy_genotype, NUCLEO_F411RE, cfg)
        assert m4 > m7

    def test_full_config_scale_plausible(self, heavy_genotype):
        # ~185 MFLOPs float32 on a 216 MHz M7: hundreds of ms to seconds.
        ms = measure_ground_truth_ms(heavy_genotype, NUCLEO_F746ZG,
                                     MacroConfig.full())
        assert 200.0 < ms < 5000.0


class TestMonotonicity:
    """Structural properties search correctness relies on."""

    def test_upgrading_edge_never_reduces_latency(self, estimator):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

        ops_strategy = st.tuples(
            *[st.sampled_from(CANDIDATE_OPS) for _ in range(NUM_EDGES)]
        )

        @given(ops_strategy, st.integers(min_value=0, max_value=5))
        @settings(max_examples=25, deadline=None)
        def check(ops, edge):
            base = Genotype(ops).with_op(edge, "none")
            upgraded = base.with_op(edge, "nor_conv_3x3")
            assert estimator.estimate_ms(upgraded) >= estimator.estimate_ms(base)

        check()

    def test_op_cost_ordering(self, estimator):
        # At fixed other edges: 3x3 conv >= 1x1 conv >= skip >= none.
        base = Genotype(("skip_connect",) * 6)
        latencies = [
            estimator.estimate_ms(base.with_op(3, op))
            for op in ("none", "skip_connect", "nor_conv_1x1", "nor_conv_3x3")
        ]
        assert latencies == sorted(latencies)
