"""Energy-per-inference and battery-life estimation."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.device import (
    MCUDevice,
    NUCLEO_F746ZG,
    NUCLEO_H743ZI,
    NUCLEO_L432KC,
)
from repro.hardware.energy import (
    BOARD_POWER_MW,
    EnergyEstimator,
    PowerProfile,
    power_profile,
)
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.network import MacroConfig

pytestmark = pytest.mark.hw

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)


@pytest.fixture(scope="module")
def f746(shared_latency_estimator):
    return EnergyEstimator(NUCLEO_F746ZG, estimator=shared_latency_estimator)


class TestPowerProfile:
    def test_all_builtin_boards_covered(self):
        from repro.hardware.device import known_devices
        for name, device in known_devices().items():
            assert name in BOARD_POWER_MW
            assert power_profile(device).active_mw > 0

    def test_unknown_board_rejected(self):
        stranger = MCUDevice(name="mystery", core="m4", clock_hz=1e8,
                             sram_bytes=1, flash_bytes=1)
        with pytest.raises(HardwareModelError, match="no power profile"):
            power_profile(stranger)

    def test_invalid_figures_rejected(self):
        with pytest.raises(HardwareModelError):
            PowerProfile(active_mw=0.0, sleep_mw=0.0, wake_uj=0.0)
        with pytest.raises(HardwareModelError):
            PowerProfile(active_mw=10.0, sleep_mw=-1.0, wake_uj=0.0)


class TestEnergyEstimator:
    def test_energy_proportional_to_latency(self, f746, heavy_genotype,
                                            light_genotype):
        heavy = f746.energy_per_inference_mj(heavy_genotype)
        light = f746.energy_per_inference_mj(light_genotype)
        assert heavy > light
        ratio_latency = (f746.estimator.estimate_ms(heavy_genotype)
                         / f746.estimator.estimate_ms(light_genotype))
        assert heavy / light == pytest.approx(ratio_latency, rel=0.02)

    def test_average_power_below_active(self, f746, light_genotype):
        avg = f746.average_power_mw(light_genotype, duty_cycle_hz=0.5)
        assert avg < f746.profile.active_mw

    def test_slower_duty_cycle_less_power(self, f746, light_genotype):
        fast = f746.average_power_mw(light_genotype, duty_cycle_hz=1.0)
        slow = f746.average_power_mw(light_genotype, duty_cycle_hz=0.1)
        assert slow < fast

    def test_unsustainable_rate_rejected(self, f746, heavy_genotype):
        with pytest.raises(HardwareModelError, match="cannot sustain"):
            f746.average_power_mw(heavy_genotype, duty_cycle_hz=1000.0)

    def test_invalid_duty_cycle(self, f746, light_genotype):
        with pytest.raises(HardwareModelError):
            f746.average_power_mw(light_genotype, duty_cycle_hz=0.0)

    def test_battery_days_positive_and_monotone(self, f746, light_genotype):
        days_slow = f746.battery_days(light_genotype, duty_cycle_hz=0.1)
        days_fast = f746.battery_days(light_genotype, duty_cycle_hz=1.0)
        assert 0 < days_fast < days_slow

    def test_report_fields(self, f746, light_genotype):
        report = f746.report(light_genotype, duty_cycle_hz=0.5)
        assert report.device_name == NUCLEO_F746ZG.name
        assert report.energy_per_inference_mj > 0
        assert "mJ/inference" in report.summary()

    def test_invalid_battery(self):
        with pytest.raises(HardwareModelError):
            EnergyEstimator(NUCLEO_F746ZG, battery_mwh=0.0)


class _FixedLatency:
    """Stub estimator: a constant latency, so the power math is closed-form."""

    def __init__(self, latency_ms: float) -> None:
        self.latency_ms = latency_ms

    def estimate_ms(self, genotype) -> float:
        return self.latency_ms


class TestPowerProfileMath:
    """Closed-form checks of the first-order power model (the surface the
    ``energy`` cost model builds on)."""

    PROFILE = PowerProfile(active_mw=100.0, sleep_mw=1.0, wake_uj=500.0)

    def _estimator(self, latency_ms: float) -> EnergyEstimator:
        return EnergyEstimator(NUCLEO_F746ZG,
                               estimator=_FixedLatency(latency_ms),
                               profile=self.PROFILE, battery_mwh=2400.0)

    def test_energy_closed_form(self, light_genotype):
        # E = P_active * t + E_wake: 100 mW * 0.25 s + 0.5 mJ = 25.5 mJ.
        est = self._estimator(250.0)
        assert est.energy_per_inference_mj(light_genotype) == \
            pytest.approx(25.5)

    def test_average_power_closed_form(self, light_genotype):
        # At 1 Hz with a 250 ms inference: (25.5 mJ + 1 mW * 0.75 s) / 1 s.
        est = self._estimator(250.0)
        assert est.average_power_mw(light_genotype, duty_cycle_hz=1.0) == \
            pytest.approx(26.25)

    def test_average_power_approaches_sleep_floor(self, light_genotype):
        # As the duty cycle slows, average power decays toward P_sleep.
        est = self._estimator(250.0)
        avg = est.average_power_mw(light_genotype, duty_cycle_hz=1e-4)
        assert self.PROFILE.sleep_mw < avg < self.PROFILE.sleep_mw * 1.01

    def test_battery_days_closed_form(self, light_genotype):
        # 2400 mWh at 26.25 mW average: ~91.43 h = ~3.81 days.
        est = self._estimator(250.0)
        assert est.battery_days(light_genotype, duty_cycle_hz=1.0) == \
            pytest.approx(2400.0 / 26.25 / 24.0)

    def test_zero_latency_pays_wake_only(self, light_genotype):
        est = self._estimator(0.0)
        assert est.energy_per_inference_mj(light_genotype) == \
            pytest.approx(self.PROFILE.wake_uj / 1e3)


class TestCrossDeviceEnergy:
    """Energy ranks devices differently than latency — the point of the
    indicator."""

    def test_low_power_m4_beats_fast_m7_on_energy(self, light_genotype):
        h7 = EnergyEstimator(
            NUCLEO_H743ZI,
            estimator=LatencyEstimator(NUCLEO_H743ZI, config=TINY))
        l4 = EnergyEstimator(
            NUCLEO_L432KC,
            estimator=LatencyEstimator(NUCLEO_L432KC, config=TINY))
        # The H7 is far faster...
        assert (h7.estimator.estimate_ms(light_genotype)
                < l4.estimator.estimate_ms(light_genotype))
        # ...but at 710 mW vs 26 mW the L4 wins on energy per inference.
        assert (l4.energy_per_inference_mj(light_genotype)
                < h7.energy_per_inference_mj(light_genotype))
