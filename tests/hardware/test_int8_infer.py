"""Static int8 inference simulation: calibration, fake quant, reports."""

import numpy as np
import pytest

from repro.data import get_dataset
from repro.errors import HardwareModelError
from repro.hardware.int8_infer import (
    ActivationObserver,
    StaticQuantizedModel,
    calibrate,
    fake_quantize,
    int8_inference_report,
    simulate_int8_inference,
)
from repro.hardware.quantize import INT8_LEVELS
from repro.nn import Conv2d, Linear, Module, ReLU, Sequential
from repro.nn.layers.shape import Flatten
from repro.searchspace.network import MacroConfig, build_network

TINY = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=10,
                   input_channels=3, image_size=8)


def tiny_mlp(rng=0):
    return Sequential(
        Conv2d(3, 4, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Linear(4 * 8 * 8, 10, rng=rng),
    )


@pytest.fixture(scope="module")
def images():
    data, _ = get_dataset("cifar10", seed=11).batch(48, rng=12)
    # Downscale to the tiny 8x8 config by cropping.
    return data[:, :, :8, :8]


class TestFakeQuantize:
    def test_identity_on_grid_points(self):
        scale = 0.1
        values = np.array([-12.7, 0.0, 0.1, 1.0])
        out = fake_quantize(values, scale)
        np.testing.assert_allclose(out, values, atol=1e-12)

    def test_clips_to_int8_range(self):
        out = fake_quantize(np.array([1e9, -1e9]), 1.0)
        np.testing.assert_array_equal(out, [INT8_LEVELS, -INT8_LEVELS])

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        scale = np.abs(values).max() / INT8_LEVELS
        out = fake_quantize(values, scale)
        assert np.abs(out - values).max() <= scale / 2 + 1e-12

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(HardwareModelError):
            fake_quantize(np.ones(3), 0.0)


class TestActivationObserver:
    def test_records_all_leaf_peaks(self, images):
        model = tiny_mlp()
        observer = ActivationObserver(model)
        with observer:
            observer.observe(images[:16])
        scales = observer.scales()
        assert len(scales) == 2  # conv + linear
        assert all(s > 0 for s in scales.values())

    def test_forward_restored_after_context(self, images):
        model = tiny_mlp()
        before = model(_tensor(images[:4])).data
        observer = ActivationObserver(model)
        with observer:
            observer.observe(images[:8])
        after = model(_tensor(images[:4])).data
        np.testing.assert_allclose(before, after)

    def test_observe_outside_context_raises(self, images):
        observer = ActivationObserver(tiny_mlp())
        with pytest.raises(HardwareModelError, match="not armed"):
            observer.observe(images[:4])

    def test_unactivated_layers_detected(self):
        observer = ActivationObserver(tiny_mlp())
        with pytest.raises(HardwareModelError, match="never activated"):
            observer.scales()

    def test_no_quantizable_layers_raises(self):
        with pytest.raises(HardwareModelError, match="no conv/linear"):
            ActivationObserver(Sequential(ReLU()))

    def test_peaks_monotone_over_batches(self, images):
        model = tiny_mlp()
        observer = ActivationObserver(model)
        with observer:
            observer.observe(images[:8])
            first = dict(observer.peaks)
            observer.observe(images[8:32])
            second = dict(observer.peaks)
        for name in first:
            assert second[name] >= first[name]


class TestStaticQuantizedModel:
    def test_missing_scale_rejected(self, images):
        model = tiny_mlp()
        with pytest.raises(HardwareModelError, match="no activation scale"):
            StaticQuantizedModel(model, {}, input_scale=0.1)

    def test_outputs_differ_but_slightly(self, images):
        scales = calibrate(tiny_mlp(), images[:32])
        reference = tiny_mlp()
        quantized = StaticQuantizedModel(
            tiny_mlp(), scales,
            input_scale=float(np.abs(images).max()) / INT8_LEVELS,
        )
        ref = reference(_tensor(images[:8])).data
        quant = quantized(_tensor(images[:8])).data
        assert not np.allclose(ref, quant)  # quantization really happened
        assert np.abs(ref - quant).mean() < 0.25 * np.abs(ref).mean() + 0.1

    def test_invalid_input_scale(self):
        with pytest.raises(HardwareModelError):
            StaticQuantizedModel(tiny_mlp(), {"dummy": 1.0}, input_scale=-1.0)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def outcome(self, images):
        return simulate_int8_inference(
            tiny_mlp, images[:32], images[32:],
        )

    def test_high_prediction_agreement(self, outcome):
        report, _ = outcome
        assert report.prediction_agreement >= 0.8

    def test_sqnr_reasonable(self, outcome):
        report, _ = outcome
        assert report.logit_sqnr_db > 15.0

    def test_report_counts(self, outcome, images):
        report, quantized = outcome
        assert report.num_images == len(images) - 32
        assert report.num_quantized_layers == 2
        assert "prediction agreement" in report.summary()

    def test_full_cell_network(self, images, light_genotype):
        """The simulation handles a complete NAS-Bench-201 network."""
        def factory():
            return build_network(light_genotype, TINY, rng=4)
        report, quantized = simulate_int8_inference(
            factory, images[:24], images[24:40],
        )
        assert report.prediction_agreement >= 0.7
        assert report.num_quantized_layers >= 5


def _tensor(images):
    from repro.autograd import Tensor
    return Tensor(images)
