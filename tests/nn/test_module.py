"""Module system: registration, traversal, state dicts, train/eval."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


def make_net():
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=0),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 2, rng=1),
    )


class TestRegistration:
    def test_parameters_found_recursively(self):
        net = make_net()
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "4.weight" in names and "4.bias" in names

    def test_parameter_order_deterministic(self):
        a = [n for n, _ in make_net().named_parameters()]
        b = [n for n, _ in make_net().named_parameters()]
        assert a == b

    def test_num_parameters(self):
        net = make_net()
        conv = 4 * 3 * 9
        bn = 2 * 4
        linear = 4 * 2 + 2
        assert net.num_parameters() == conv + bn + linear

    def test_modules_iteration_includes_self(self):
        net = make_net()
        mods = list(net.modules())
        assert mods[0] is net
        assert any(isinstance(m, nn.Linear) for m in mods)

    def test_children_are_direct_only(self):
        net = make_net()
        assert len(list(net.children())) == 5

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestTrainEval:
    def test_train_propagates(self):
        net = make_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())


class TestGradients:
    def test_zero_grad_clears_all(self):
        net = make_net()
        out = net(Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_all_parameters_receive_gradient(self):
        net = make_net()
        out = net(Tensor(np.random.default_rng(1).normal(size=(2, 3, 8, 8))))
        out.sum().backward()
        assert all(p.grad is not None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net_a, net_b = make_net(), make_net()
        # Different init (rng seeds same here, so perturb first).
        for p in net_a.parameters():
            p.data += 1.0
        net_b.load_state_dict(net_a.state_dict())
        x = Tensor(np.random.default_rng(2).normal(size=(1, 3, 8, 8)))
        net_a.eval(), net_b.eval()
        assert np.allclose(net_a(x).data, net_b(x).data)

    def test_state_dict_copies_data(self):
        net = make_net()
        state = net.state_dict()
        key = next(iter(state))
        state[key] += 100.0
        assert not np.allclose(state[key], net.state_dict()[key])

    def test_partial_load_ignores_missing(self):
        net = make_net()
        net.load_state_dict({})  # no-op, must not raise


class TestContainers:
    def test_sequential_len_iter_getitem(self):
        net = make_net()
        assert len(net) == 5
        assert isinstance(net[4], nn.Linear)
        assert len(list(iter(net))) == 5

    def test_module_list_append_and_index(self):
        ml = nn.ModuleList([nn.ReLU()])
        ml.append(nn.ReLU())
        assert len(ml) == 2
        assert isinstance(ml[1], nn.ReLU)

    def test_module_list_params_traversed(self):
        ml = nn.ModuleList([nn.Linear(2, 2, rng=0), nn.Linear(2, 2, rng=1)])
        assert len(ml.parameters()) == 4

    def test_module_list_forward_raises(self):
        with pytest.raises(NotImplementedError):
            nn.ModuleList([])(Tensor([1.0]))

    def test_base_module_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(Tensor([1.0]))
