"""Layer behaviour: shapes, statistics, modes."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias_by_default(self):
        assert nn.Conv2d(3, 4, 3).bias is None

    def test_bias_optional(self):
        conv = nn.Conv2d(3, 4, 3, bias=True)
        assert conv.bias is not None
        assert conv.num_parameters() == 4 * 3 * 9 + 4

    def test_invalid_channels_rejected(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 4, 3)
        with pytest.raises(ValueError):
            nn.Conv2d(4, 4, 0)

    def test_seeded_init_reproducible(self):
        a = nn.Conv2d(3, 4, 3, rng=42).weight.data
        b = nn.Conv2d(3, 4, 3, rng=42).weight.data
        assert np.array_equal(a, b)

    def test_extra_repr(self):
        assert "kernel_size=3" in repr(nn.Conv2d(3, 4, 3))


class TestLinear:
    def test_affine_map(self, rng):
        lin = nn.Linear(3, 2, rng=0)
        x = rng.normal(size=(4, 3))
        expected = x @ lin.weight.data.T + lin.bias.data
        assert np.allclose(lin(Tensor(x)).data, expected)

    def test_no_bias(self):
        lin = nn.Linear(3, 2, bias=False)
        assert lin.bias is None

    def test_invalid_features_rejected(self):
        with pytest.raises(ValueError):
            nn.Linear(-1, 2)


class TestBatchNorm2d:
    def test_train_mode_normalises_batch(self, rng):
        bn = nn.BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        x = rng.normal(loc=5.0, size=(16, 2, 4, 4))
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, x.mean(axis=(0, 2, 3)), atol=1e-8)

    def test_eval_mode_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        x = rng.normal(size=(8, 2, 3, 3))
        bn(Tensor(x))          # sets running stats to batch stats
        bn.eval()
        y = rng.normal(size=(4, 2, 3, 3))
        out = bn(Tensor(y)).data
        expected = (y - bn.running_mean.reshape(1, -1, 1, 1)) / np.sqrt(
            bn.running_var.reshape(1, -1, 1, 1) + bn.eps
        )
        assert np.allclose(out, expected, atol=1e-7)

    def test_affine_scale_shift(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.weight.data[...] = 2.0
        bn.bias.data[...] = 1.0
        x = rng.normal(size=(8, 2, 3, 3))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 1.0, atol=1e-7)

    def test_non_affine(self, rng):
        bn = nn.BatchNorm2d(2, affine=False)
        assert bn.num_parameters() == 0
        bn(Tensor(rng.normal(size=(4, 2, 3, 3))))  # must not raise

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((2, 2))))

    def test_gradient_flows_through_norm(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.weight.grad is not None


class TestPooling:
    def test_avg_pool_defaults_stride_to_kernel(self, rng):
        pool = nn.AvgPool2d(2)
        out = pool(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_global_avg_pool_shape(self, rng):
        out = nn.GlobalAvgPool2d()(Tensor(rng.normal(size=(3, 5, 4, 4))))
        assert out.shape == (3, 5)


class TestActivationsAndShape:
    def test_relu_records_pattern_when_asked(self, rng):
        relu = nn.ReLU(record_pattern=True)
        x = rng.normal(size=(2, 3))
        relu(Tensor(x))
        assert relu.last_pattern is not None
        assert np.array_equal(relu.last_pattern, x > 0)

    def test_relu_no_recording_by_default(self, rng):
        relu = nn.ReLU()
        relu(Tensor(rng.normal(size=(2, 3))))
        assert relu.last_pattern is None

    def test_sigmoid_tanh_layers(self, rng):
        x = Tensor(rng.normal(size=(4,)))
        assert nn.Sigmoid()(x).shape == (4,)
        assert nn.Tanh()(x).shape == (4,)

    def test_flatten(self, rng):
        out = nn.Flatten()(Tensor(rng.normal(size=(2, 3, 4, 5))))
        assert out.shape == (2, 60)


class TestInitializers:
    def test_kaiming_normal_std(self):
        from repro.nn import init
        w = init.kaiming_normal((256, 128, 3, 3), rng=0)
        fan_in = 128 * 9
        expected_std = np.sqrt(2.0 / fan_in)
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_kaiming_uniform_bound(self):
        from repro.nn import init
        w = init.kaiming_uniform((64, 64), rng=1)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert w.max() <= bound and w.min() >= -bound

    def test_xavier_normal_std(self):
        from repro.nn import init
        w = init.xavier_normal((300, 200), rng=2)
        expected = np.sqrt(2.0 / 500)
        assert abs(w.std() - expected) / expected < 0.05

    def test_unsupported_shape_raises(self):
        from repro.nn import init
        with pytest.raises(ValueError):
            init.kaiming_normal((3,))
