"""Integration: discovered architecture → training → int8 deployment."""

import numpy as np
import pytest

from repro.data.synthetic import DatasetSpec, SyntheticImageDataset
from repro.hardware.memory import MemoryEstimator
from repro.hardware.quantize import QuantizedModule, quantization_report
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig, build_network
from repro.train import Trainer, TrainerConfig

pytestmark = pytest.mark.slow  # skipped by the -m 'not slow' fast lane


@pytest.fixture(scope="module")
def deployment():
    """A trained tiny deployment network on a separable 3-class task."""
    macro = MacroConfig(init_channels=4, cells_per_stage=1, num_classes=3,
                        image_size=8)
    genotype = Genotype.from_arch_str(
        "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
        "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
    )
    dataset = SyntheticImageDataset(DatasetSpec("toy3", 3, 8),
                                    noise_sigma=0.3, seed=2)
    model = build_network(genotype, macro, rng=0)
    trainer = Trainer(model, dataset,
                      TrainerConfig(epochs=4, batch_size=24,
                                    batches_per_epoch=8, lr=0.1, seed=0))
    trainer.fit()
    return genotype, macro, dataset, model, trainer


class TestTrainedDeployment:
    def test_model_learned_task(self, deployment):
        _, _, _, _, trainer = deployment
        assert trainer.evaluate(num_batches=4) > 0.6  # chance = 1/3

    def test_quantization_preserves_accuracy(self, deployment):
        genotype, macro, dataset, model, trainer = deployment
        clone = build_network(genotype, macro, rng=0)
        clone.load_state_dict(model.state_dict())
        quantized = QuantizedModule(clone)
        quant_trainer = Trainer(quantized, dataset,
                                TrainerConfig(epochs=1, batch_size=24,
                                              batches_per_epoch=1, seed=0))
        float_acc = trainer.evaluate(num_batches=4)
        int8_acc = quant_trainer.evaluate(num_batches=4)
        assert int8_acc > float_acc - 0.1

    def test_quantized_model_fits_mcu_budget(self, deployment):
        genotype, macro, _, model, _ = deployment
        report = quantization_report(model)
        memory = MemoryEstimator(macro, element_bytes=1)
        mem = memory.report(genotype)
        # Tiny deployment: comfortably inside a 320 KB / 1 MB budget.
        assert report.flash_bytes_int8 < 1024 * 1024
        assert mem.peak_sram_bytes < 320 * 1024

    def test_training_is_deterministic_across_reruns(self, deployment):
        genotype, macro, dataset, _, trainer = deployment
        model2 = build_network(genotype, macro, rng=0)
        trainer2 = Trainer(model2, dataset,
                           TrainerConfig(epochs=4, batch_size=24,
                                         batches_per_epoch=8, lr=0.1, seed=0))
        trainer2.fit()
        assert trainer2.history[-1].train_loss == \
            pytest.approx(trainer.history[-1].train_loss)
