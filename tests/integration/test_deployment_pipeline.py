"""Integration: search -> secondary stage -> deployment assessment.

The complete MicroNAS workflow a user runs: discover a cell with the
zero-shot search, fit it onto a board with the macro stage, then verify
the resulting deployment fits and that every hardware model agrees with
the others along the way.
"""

import pytest

from repro.hardware.deploy import deployment_report
from repro.hardware.device import NUCLEO_F746ZG, NUCLEO_L432KC
from repro.hardware.latency import LatencyEstimator
from repro.hardware.memplan import liveness_lower_bound, tensor_lifetimes
from repro.proxies.base import ProxyConfig
from repro.search import (
    HybridObjective,
    ObjectiveWeights,
    ZeroShotRandomSearch,
)
from repro.search.macro import MacroSearchSpace, MacroStageSearch, device_constraints
from repro.searchspace.network import MacroConfig

pytestmark = pytest.mark.slow  # skipped by the -m 'not slow' fast lane

FAST_PROXY = ProxyConfig(init_channels=4, cells_per_stage=1, input_size=8,
                         ntk_batch_size=8, lr_num_samples=32, lr_input_size=4,
                         lr_channels=2, seed=3)
SPACE = MacroSearchSpace(channel_choices=(4, 8, 16), cell_choices=(1, 2))


@pytest.fixture(scope="module")
def discovered():
    """A quick zero-shot search standing in for the full MicroNAS run."""
    objective = HybridObjective(
        proxy_config=FAST_PROXY,
        weights=ObjectiveWeights(flops=0.5),  # FLOPs-guided: no profiling
    )
    return ZeroShotRandomSearch(objective, num_samples=12, seed=5).search()


class TestSearchToDeployment:
    def test_macro_stage_accepts_search_output(self, discovered):
        search = MacroStageSearch(discovered.genotype, device=NUCLEO_F746ZG,
                                  space=SPACE, element_bytes=1)
        plan = search.select(device_constraints(NUCLEO_F746ZG))
        assert plan.candidate.feasible
        assert plan.genotype is discovered.genotype

    def test_deployment_report_consistent_with_macro_plan(self, discovered):
        search = MacroStageSearch(discovered.genotype, device=NUCLEO_F746ZG,
                                  space=SPACE, element_bytes=1)
        plan = search.select(device_constraints(NUCLEO_F746ZG))
        report = deployment_report(discovered.genotype, NUCLEO_F746ZG,
                                   config=plan.config)
        # The macro stage's analytic peak and the planner's arena measure
        # the same quantity with different conventions; the planner (with
        # buffer reuse) must never need more than the no-reuse-style
        # analytic estimate by a large factor.
        assert report.arena_int8_bytes <= plan.candidate.peak_sram_bytes * 2
        assert report.deployable

    def test_planner_bound_scales_with_skeleton(self, discovered):
        small = liveness_lower_bound(tensor_lifetimes(
            discovered.genotype,
            MacroConfig(init_channels=4, cells_per_stage=1), 1,
        ))
        large = liveness_lower_bound(tensor_lifetimes(
            discovered.genotype,
            MacroConfig(init_channels=16, cells_per_stage=2), 1,
        ))
        assert large > small

    def test_tiny_board_forces_smaller_plan_than_big_board(self, discovered):
        plans = {}
        for device in (NUCLEO_F746ZG, NUCLEO_L432KC):
            search = MacroStageSearch(discovered.genotype, device=device,
                                      space=SPACE, element_bytes=1)
            plans[device.name] = search.select(device_constraints(device))
        assert (plans[NUCLEO_L432KC.name].candidate.capacity
                <= plans[NUCLEO_F746ZG.name].candidate.capacity)

    def test_shared_estimator_consistency(self, discovered):
        """LatencyEstimator shared across the pipeline gives one answer."""
        config = MacroConfig(init_channels=8, cells_per_stage=2)
        estimator = LatencyEstimator(NUCLEO_F746ZG, config=config)
        search = MacroStageSearch(discovered.genotype, device=NUCLEO_F746ZG,
                                  space=SPACE)
        cand = search.evaluate(config)
        assert cand.latency_ms == pytest.approx(
            estimator.estimate_ms(discovered.genotype), rel=1e-9
        )
