"""Cross-module integration: the paper's full pipeline at reduced scale."""

import numpy as np
import pytest

from repro.benchdata import SurrogateBenchmarkAPI, SurrogateModel
from repro.data import get_dataset
from repro.eval import kendall_tau
from repro.hardware import LatencyEstimator, MemoryEstimator
from repro.proxies import ProxyConfig
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number, ntk_spectrum
from repro.search import (
    ConstrainedEvolutionarySearch,
    EvolutionConfig,
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
    TENASSearch,
)
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig

pytestmark = pytest.mark.slow  # skipped by the -m 'not slow' fast lane


class TestProxyAccuracyCorrelation:
    """The premise of zero-shot NAS: indicators rank like trained accuracy."""

    @pytest.fixture(scope="class")
    def sample_with_metrics(self, tiny_proxy_config):
        # The NTK signal needs a slightly wider proxy network and batch than
        # the ultra-tiny unit-test config (exactly the batch-size effect the
        # paper studies in Fig. 2b), so widen just for this premise test.
        config = ProxyConfig(init_channels=8, cells_per_stage=1, input_size=8,
                             ntk_batch_size=16, lr_num_samples=32,
                             lr_input_size=4, lr_channels=2, seed=7)
        space = NasBench201Space()
        surrogate = SurrogateModel()
        archs = space.sample(24, rng=77)
        kappas, regions, accs = [], [], []
        for g in archs:
            kappa = ntk_condition_number(g, config)
            kappas.append(1e12 if np.isinf(kappa) else kappa)
            regions.append(count_line_regions(g, config))
            accs.append(surrogate.mean_accuracy(g, "cifar10"))
        return kappas, regions, accs

    def test_ntk_negatively_rank_correlates(self, sample_with_metrics):
        kappas, _, accs = sample_with_metrics
        assert kendall_tau([-k for k in kappas], accs) > 0.2

    def test_linear_regions_positively_rank_correlates(self, sample_with_metrics):
        _, regions, accs = sample_with_metrics
        assert kendall_tau(regions, accs) > 0.2


class TestDatasetDrivenProxies:
    def test_ntk_on_real_dataset_batches(self, tiny_proxy_config, heavy_genotype):
        images, _ = get_dataset("cifar10").batch(8, rng=0)
        res = ntk_spectrum(heavy_genotype, tiny_proxy_config, images=images)
        assert np.isfinite(res.condition_number)

    def test_imagenet16_batch_matches_proxy_input(self, tiny_proxy_config,
                                                  heavy_genotype):
        images, _ = get_dataset("imagenet16-120").batch(8, rng=0)
        res = ntk_spectrum(heavy_genotype, tiny_proxy_config, images=images)
        assert res.batch_size == 8


class TestFullSearchPipeline:
    def test_micronas_beats_tenas_on_latency_at_similar_accuracy(
        self, shared_latency_estimator
    ):
        """The paper's headline comparison at reduced proxy scale.

        Uses the benchmark-scale proxy config: the ultra-tiny unit-test
        config is too noisy for end-to-end search comparisons.
        """
        search_config = ProxyConfig(init_channels=4, cells_per_stage=1,
                                    input_size=8, ntk_batch_size=16,
                                    lr_num_samples=64, lr_input_size=4,
                                    lr_channels=3, seed=7)
        surrogate = SurrogateModel()
        tenas = TENASSearch(proxy_config=search_config, seed=0).search()
        objective = HybridObjective(
            proxy_config=search_config,
            weights=ObjectiveWeights(latency=0.6),
            latency_estimator=shared_latency_estimator,
        )
        micronas = MicroNASSearch(objective, seed=0).search()

        lat_tenas = shared_latency_estimator.estimate_ms(tenas.genotype)
        lat_micronas = shared_latency_estimator.estimate_ms(micronas.genotype)
        acc_tenas = surrogate.mean_accuracy(tenas.genotype)
        acc_micronas = surrogate.mean_accuracy(micronas.genotype)

        assert lat_micronas < lat_tenas
        assert acc_micronas > acc_tenas - 6.0  # tiny proxies: loose band

    def test_zero_shot_orders_of_magnitude_cheaper_than_evolution(
        self, tiny_proxy_config
    ):
        """Claim C1 at reduced scale: >=100x cost gap even in miniature."""
        tenas = TENASSearch(proxy_config=tiny_proxy_config, seed=0).search()
        evo = ConstrainedEvolutionarySearch(
            EvolutionConfig(population_size=20, sample_size=5, cycles=100),
            seed=0,
        ).search()
        assert evo.search_gpu_hours / max(tenas.search_gpu_hours, 1e-9) > 100.0

    def test_memory_and_latency_consistent_views(self, heavy_genotype,
                                                 light_genotype,
                                                 shared_latency_estimator):
        mem = MemoryEstimator(MacroConfig.full())
        assert mem.report(heavy_genotype).flash_bytes > \
            mem.report(light_genotype).flash_bytes
        assert shared_latency_estimator.estimate_ms(heavy_genotype) > \
            shared_latency_estimator.estimate_ms(light_genotype)


class TestBenchmarkApiIntegration:
    def test_api_agrees_with_direct_surrogate(self, heavy_genotype):
        api = SurrogateBenchmarkAPI(datasets=["cifar10"], seeds=(0, 1, 2))
        direct = SurrogateModel().mean_accuracy(heavy_genotype, "cifar10",
                                                seeds=range(3))
        assert api.accuracy(heavy_genotype) == pytest.approx(direct)
