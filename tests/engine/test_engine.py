"""Engine population API and its integration with the search layer."""

import numpy as np
import pytest

from repro.engine import Engine, IndicatorTable
from repro.errors import ProxyError
from repro.search.evolutionary import EvolutionConfig, TrainlessEvolutionarySearch
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.searchspace.canonical import canonicalize
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space


@pytest.fixture()
def engine(tiny_proxy_config, shared_latency_estimator):
    return Engine(proxy_config=tiny_proxy_config,
                  latency_estimator=shared_latency_estimator)


class TestEvaluatePopulation:
    def test_rows_in_request_order_with_duplicates(self, engine,
                                                   heavy_genotype,
                                                   light_genotype):
        population = [heavy_genotype, light_genotype, heavy_genotype]
        table = engine.evaluate_population(population)
        assert len(table) == 3
        assert table.unique_canonical == 2
        assert table.row(0) == table.row(2)
        assert table.row(0) != table.row(1)

    def test_matches_per_candidate_evaluation(self, engine, heavy_genotype,
                                              light_genotype,
                                              skip_only_genotype):
        population = [heavy_genotype, light_genotype, skip_only_genotype]
        table = engine.evaluate_population(population)
        for i, genotype in enumerate(population):
            assert table.row(i) == engine.evaluate(genotype)

    def test_second_pass_all_hits(self, engine):
        space = NasBench201Space()
        population = space.sample(6, rng=0)
        engine.evaluate_population(population)
        table = engine.evaluate_population(population)
        assert table.cache_misses == 0
        assert table.cache_hits > 0

    def test_canonical_dedupe_counts(self, engine):
        a = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "nor_conv_3x3"))
        b = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "avg_pool_3x3"))
        assert canonicalize(a) == canonicalize(b)
        table = engine.evaluate_population([a, b])
        assert table.unique_canonical == 1
        assert table.row(0) == table.row(1)

    def test_latency_column_gated(self, engine, heavy_genotype):
        without = engine.evaluate_population([heavy_genotype])
        assert without.column("latency")[0] == 0.0
        with_latency = engine.evaluate_population([heavy_genotype],
                                                  with_latency=True)
        assert with_latency.column("latency")[0] > 0.0


class TestIndicatorTable:
    def test_column_and_missing(self, engine, heavy_genotype):
        table = engine.evaluate_population([heavy_genotype])
        assert table.column("ntk").shape == (1,)
        with pytest.raises(ProxyError):
            table.column("nope")

    def test_argbest_validates_length(self, engine, heavy_genotype):
        table = engine.evaluate_population([heavy_genotype])
        with pytest.raises(ProxyError):
            table.argbest(np.zeros(5))

    def test_to_dicts_round_trip(self, engine, heavy_genotype):
        table = engine.evaluate_population([heavy_genotype])
        record = table.to_dicts()[0]
        assert record["arch_str"] == heavy_genotype.to_arch_str()
        assert record["ntk"] == table.column("ntk")[0]

    def test_shape_validation(self, heavy_genotype):
        with pytest.raises(ProxyError):
            IndicatorTable(genotypes=[heavy_genotype],
                           columns={"ntk": np.zeros(3)})


class TestDeviceRouting:
    def test_for_device_returns_self_on_match(self, engine):
        assert engine.for_device(engine.device()) is engine

    def test_for_device_builds_sibling_sharing_cache(self, engine):
        from repro.hardware.device import NUCLEO_F411RE
        sibling = engine.for_device(NUCLEO_F411RE)
        assert sibling is not engine
        assert sibling.cache is engine.cache
        assert sibling.device().name == NUCLEO_F411RE.name

    def test_macro_search_honours_device_over_shared_engine(
        self, tiny_proxy_config, heavy_genotype
    ):
        from repro.hardware.device import NUCLEO_F411RE
        from repro.search.macro import MacroStageSearch, MacroSearchSpace
        shared = Engine(proxy_config=tiny_proxy_config)  # prices F746ZG
        search = MacroStageSearch(
            heavy_genotype, device=NUCLEO_F411RE,
            space=MacroSearchSpace(channel_choices=(4,), cell_choices=(1,)),
            engine=shared,
        )
        assert search.engine.device().name == NUCLEO_F411RE.name
        assert search.engine.cache is shared.cache

    def test_latency_miss_counted_once(self, tiny_proxy_config,
                                       heavy_genotype):
        from repro.searchspace.network import MacroConfig
        engine = Engine(proxy_config=tiny_proxy_config,
                        macro_config=MacroConfig(init_channels=4,
                                                 cells_per_stage=1,
                                                 image_size=8))
        engine.latency_ms(heavy_genotype)
        assert engine.cache.misses == 1
        engine.latency_ms(heavy_genotype)
        assert engine.cache.misses == 1 and engine.cache.hits == 1


class TestObjectiveIntegration:
    def test_engine_and_config_args_conflict(self, tiny_proxy_config):
        from repro.errors import SearchError
        engine = Engine(proxy_config=tiny_proxy_config)
        with pytest.raises(SearchError):
            HybridObjective(proxy_config=tiny_proxy_config, engine=engine)

    def test_score_genotypes_uses_cache(self, tiny_proxy_config,
                                        shared_latency_estimator):
        objective = HybridObjective(
            proxy_config=tiny_proxy_config,
            weights=ObjectiveWeights(latency=0.5),
            latency_estimator=shared_latency_estimator,
        )
        population = NasBench201Space().sample(5, rng=2)
        first = objective.score_genotypes(population)
        misses_before = objective.engine.cache.misses
        second = objective.score_genotypes(population)
        assert objective.engine.cache.misses == misses_before
        np.testing.assert_array_equal(first, second)

    def test_clones_share_cache(self, tiny_proxy_config, heavy_genotype):
        objective = HybridObjective(proxy_config=tiny_proxy_config)
        clone = objective.with_weights(ObjectiveWeights(flops=1.0))
        objective.genotype_indicators(heavy_genotype)
        misses_before = objective.engine.cache.misses
        clone.genotype_indicators(heavy_genotype)
        assert clone.engine.cache.misses == misses_before


class TestTrainlessEvolution:
    def _objective(self, tiny_proxy_config):
        return HybridObjective(proxy_config=tiny_proxy_config)

    def test_runs_and_reports(self, tiny_proxy_config):
        search = TrainlessEvolutionarySearch(
            self._objective(tiny_proxy_config),
            EvolutionConfig(population_size=6, sample_size=3, cycles=10),
            seed=0,
        )
        result = search.search()
        assert result.algorithm == "evolutionary-trainless"
        assert "ntk" in result.indicators
        assert result.ledger.counts["evolution_candidates"] == 6 + 10

    def test_deterministic(self, tiny_proxy_config):
        cfg = EvolutionConfig(population_size=6, sample_size=3, cycles=12)
        a = TrainlessEvolutionarySearch(self._objective(tiny_proxy_config),
                                        cfg, seed=5).search().genotype
        b = TrainlessEvolutionarySearch(self._objective(tiny_proxy_config),
                                        cfg, seed=5).search().genotype
        assert a == b

    def test_cache_reuse_across_cycles(self, tiny_proxy_config):
        objective = self._objective(tiny_proxy_config)
        search = TrainlessEvolutionarySearch(
            objective,
            EvolutionConfig(population_size=6, sample_size=3, cycles=25),
            seed=1,
        )
        search.search()
        stats = objective.engine.cache.stats
        # Aging evolution revisits members every cycle; the cache must
        # absorb the revisits (hits strictly dominate distinct computes).
        assert stats.hits > stats.misses

    def test_invalid_config_rejected(self, tiny_proxy_config):
        from repro.errors import SearchError
        with pytest.raises(SearchError):
            TrainlessEvolutionarySearch(
                self._objective(tiny_proxy_config),
                EvolutionConfig(population_size=1),
            )
