"""Vectorized kernels agree with the per-sample / per-line reference paths."""

import numpy as np
import pytest

from repro.engine.kernels import (
    batched_condition_numbers,
    batched_count_line_regions,
    batched_eigvalsh,
    batched_ntk_jacobian,
)
from repro.errors import ProxyError
from repro.proxies.linear_regions import (
    LinearRegionNetwork,
    _regions_along_line,
    count_line_regions,
    supernet_line_regions,
)
from repro.proxies.ntk import (
    compute_ntk_gram,
    ntk_condition_number,
    supernet_ntk_condition_number,
)
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import build_network
from repro.searchspace.ops import CANDIDATE_OPS


def _reference_jacobian(network, images):
    """Per-sample frozen-BN Jacobian exactly as the reference loop builds it."""
    from repro.proxies.ntk import _collect_param_grads, _freeze_batch_stats
    from repro.autograd import Tensor

    _freeze_batch_stats(network, images)
    params = network.parameters()
    jacobian = np.empty((images.shape[0], sum(p.size for p in params)))
    for i in range(images.shape[0]):
        for p in params:
            p.zero_grad()
        output = network(Tensor(images[i: i + 1]))
        output.backward(np.ones_like(output.data))
        jacobian[i] = _collect_param_grads(params)
        output.clear_tape_grads()
    return jacobian


class TestNtkJacobianEquivalence:
    def test_jacobian_matches_reference(self, tiny_proxy_config,
                                        heavy_genotype, rng):
        images = rng.normal(size=(6, 3, 8, 8))
        net_ref = build_network(heavy_genotype,
                                tiny_proxy_config.macro_config(), rng=0)
        net_bat = build_network(heavy_genotype,
                                tiny_proxy_config.macro_config(), rng=0)
        j_ref = _reference_jacobian(net_ref, images)
        net_bat.train(False)
        j_bat = batched_ntk_jacobian(net_bat, images)
        assert j_bat.shape == j_ref.shape
        np.testing.assert_allclose(j_bat, j_ref, rtol=1e-9, atol=1e-12)

    def test_gram_modes_agree(self, tiny_proxy_config, light_genotype, rng):
        images = rng.normal(size=(5, 3, 8, 8))
        grams = {}
        for mode in ("reference", "batched"):
            net = build_network(light_genotype,
                                tiny_proxy_config.macro_config(), rng=3)
            grams[mode] = compute_ntk_gram(net, images, mode=mode)
        scale = np.abs(grams["reference"]).max()
        assert np.abs(grams["batched"] - grams["reference"]).max() / scale < 1e-9

    def test_condition_number_within_tolerance(self, tiny_proxy_config,
                                               heavy_genotype):
        ref = ntk_condition_number(heavy_genotype,
                                   tiny_proxy_config.reference())
        bat = ntk_condition_number(heavy_genotype, tiny_proxy_config)
        assert abs(bat - ref) / ref < 1e-6

    def test_supernet_condition_number_within_tolerance(self,
                                                        tiny_proxy_config):
        specs = [EdgeSpec(i, CANDIDATE_OPS) for i in range(6)]
        ref = supernet_ntk_condition_number(specs,
                                            tiny_proxy_config.reference())
        bat = supernet_ntk_condition_number(specs, tiny_proxy_config)
        assert abs(bat - ref) / ref < 1e-6

    def test_disconnected_still_pathological(self, tiny_proxy_config,
                                             disconnected_genotype):
        kappa = ntk_condition_number(disconnected_genotype, tiny_proxy_config)
        assert kappa > 1e3 or np.isinf(kappa)

    def test_unknown_mode_rejected(self, tiny_proxy_config, heavy_genotype,
                                   rng):
        net = build_network(heavy_genotype, tiny_proxy_config.macro_config(),
                            rng=0)
        with pytest.raises(ProxyError):
            compute_ntk_gram(net, rng.normal(size=(2, 3, 8, 8)), mode="nope")

    def test_batched_restores_network_state(self, tiny_proxy_config,
                                            heavy_genotype, rng):
        from repro.nn.layers.norm import BatchNorm2d
        net = build_network(heavy_genotype, tiny_proxy_config.macro_config(),
                            rng=0)
        compute_ntk_gram(net, rng.normal(size=(4, 3, 8, 8)), mode="batched")
        for p in net.parameters():
            assert p.requires_grad
        for module in net.modules():
            if isinstance(module, BatchNorm2d):
                assert not module.freeze_stats_on_forward
        for module in net.modules():
            assert not module.__dict__.get("_forward_hooks")


class TestLineCountingEquivalence:
    def test_batched_counts_bit_identical_per_line(self, rng):
        network = LinearRegionNetwork.from_genotype(
            Genotype(("nor_conv_3x3",) * 6), channels=3, num_cells=1, rng=5
        )
        shape = (3, 4, 4)
        starts = rng.normal(size=(6, *shape)) * 2.0
        stops = rng.normal(size=(6, *shape)) * 2.0
        batched = batched_count_line_regions(network, starts, stops, 24)
        reference = [
            _regions_along_line(network, starts[i], stops[i], 24)
            for i in range(6)
        ]
        assert list(batched) == reference

    def test_count_line_regions_modes_equal(self, tiny_proxy_config,
                                            heavy_genotype):
        assert count_line_regions(heavy_genotype, tiny_proxy_config) == \
            count_line_regions(heavy_genotype, tiny_proxy_config.reference())

    def test_supernet_line_regions_modes_equal(self, tiny_proxy_config):
        edge_op_sets = [tuple(CANDIDATE_OPS)] * 6
        assert supernet_line_regions(edge_op_sets, tiny_proxy_config) == \
            supernet_line_regions(edge_op_sets, tiny_proxy_config.reference())

    def test_mismatched_endpoints_rejected(self, rng):
        network = LinearRegionNetwork.from_genotype(
            Genotype(("skip_connect",) * 6), channels=2, num_cells=1, rng=0
        )
        with pytest.raises(ProxyError):
            batched_count_line_regions(
                network, rng.normal(size=(2, 3, 4, 4)),
                rng.normal(size=(3, 3, 4, 4)), 8
            )


class TestBatchedEigensolve:
    def _grams(self, rng, n=7, b=8):
        mats = rng.normal(size=(n, b, b))
        return np.einsum("nij,nkj->nik", mats, mats)

    def test_stacked_eigvalsh_bit_identical_per_matrix(self, rng):
        grams = self._grams(rng)
        batched = batched_eigvalsh(grams)
        per_matrix = np.stack([np.linalg.eigvalsh(g) for g in grams])
        np.testing.assert_array_equal(batched, per_matrix)

    def test_condition_numbers_match_per_candidate_path(self, rng):
        from repro.proxies.ntk import NtkResult

        grams = self._grams(rng)
        for k_index in (1, 2, 5):
            batched = batched_condition_numbers(grams, k_index=k_index)
            reference = [
                NtkResult(np.linalg.eigvalsh(g)[::-1].copy(), g.shape[0])
                .k(k_index)
                for g in grams
            ]
            assert list(batched) == reference

    def test_singular_grams_map_to_inf(self, rng):
        mats = rng.normal(size=(3, 6, 2))  # rank 2 < 6: singular Grams
        grams = np.einsum("nij,nkj->nik", mats, mats)
        values = batched_condition_numbers(grams, k_index=1)
        assert np.all(np.isinf(values))

    def test_shape_and_index_validation(self, rng):
        with pytest.raises(ProxyError):
            batched_eigvalsh(rng.normal(size=(4, 4)))
        with pytest.raises(ProxyError):
            batched_eigvalsh(rng.normal(size=(2, 4, 3)))
        with pytest.raises(ProxyError):
            batched_condition_numbers(self._grams(rng, n=2, b=4), k_index=5)

    def test_engine_population_ntk_matches_per_candidate(self,
                                                         tiny_proxy_config):
        from repro.engine import Engine
        from repro.searchspace.space import NasBench201Space

        population = NasBench201Space().sample(5, rng=11)
        stacked = Engine(proxy_config=tiny_proxy_config)
        stacked.ntk_population(population)
        serial = Engine(proxy_config=tiny_proxy_config)
        for genotype in population:
            # Per-candidate path: one eigvalsh per Gram inside ntk().
            assert stacked.ntk(genotype) == serial.ntk(genotype)
