"""Canonicalization-aware cache: keying, bit-identity, invalidation."""

import dataclasses

import numpy as np
import pytest

from repro.engine import Engine, IndicatorCache
from repro.hardware.device import NUCLEO_F411RE
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.canonical import canonicalize, functionally_equal
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@pytest.fixture()
def engine(tiny_proxy_config, shared_latency_estimator):
    return Engine(proxy_config=tiny_proxy_config,
                  latency_estimator=shared_latency_estimator)


class TestIndicatorCache:
    def test_lookup_computes_once(self):
        cache = IndicatorCache()
        calls = []
        value = cache.lookup("k", lambda: calls.append(1) or 42.0)
        again = cache.lookup("k", lambda: calls.append(1) or 43.0)
        assert value == again == 42.0
        assert len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_inf_values_cacheable(self):
        cache = IndicatorCache()
        cache.lookup("inf", lambda: float("inf"))
        assert cache.lookup("inf", lambda: 0.0) == float("inf")
        assert cache.stats.hits == 1

    def test_invalidate_and_clear(self):
        cache = IndicatorCache()
        cache.put("a", 1.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.put("b", 2.0)
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0


class TestCanonicalAliasing:
    def test_canonically_equal_hit_same_entry(self, engine):
        # none-only inputs to node 2, with 2->3 carrying a conv: the ops on
        # edges into node 2 differ but both die (node 2 unreachable).
        a = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "nor_conv_3x3"))
        b = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "avg_pool_3x3"))
        # Sanity: edge 5 (2->3) must be dead in both for this to alias.
        assert functionally_equal(a, b)
        assert a != b
        first = engine.evaluate(a)
        hits_before = engine.cache.hits
        second = engine.evaluate(b)
        assert engine.cache.hits > hits_before  # no recomputation
        for name in ("ntk", "linear_regions", "flops"):
            # Bit-identical, not merely close: same entry, same object.
            assert first[name] == second[name]

    def test_cold_cache_bit_identical_for_equal_forms(
        self, tiny_proxy_config, shared_latency_estimator
    ):
        """Even across engines (cold caches), canonically-equal genotypes
        produce bit-identical values: the proxy RNG seeds from the
        canonical index."""
        a = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "nor_conv_3x3"))
        b = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "avg_pool_3x3"))
        assert functionally_equal(a, b)
        e1 = Engine(proxy_config=tiny_proxy_config,
                    latency_estimator=shared_latency_estimator)
        e2 = Engine(proxy_config=tiny_proxy_config,
                    latency_estimator=shared_latency_estimator)
        assert e1.ntk(a) == e2.ntk(b)
        assert e1.linear_regions(a) == e2.linear_regions(b)

    def test_values_computed_on_canonical_form(self, engine):
        g = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "nor_conv_3x3"))
        canon = canonicalize(g)
        assert engine.ntk(g) == engine.ntk(canon)
        assert engine.flops(g) == engine.flops(canon)


class TestCacheInvalidation:
    def test_differing_proxy_config_misses(self, tiny_proxy_config,
                                           heavy_genotype):
        cache = IndicatorCache()
        e1 = Engine(proxy_config=tiny_proxy_config, cache=cache)
        e2 = Engine(proxy_config=tiny_proxy_config.with_seed(99), cache=cache)
        a = e1.ntk(heavy_genotype)
        misses_before = cache.misses
        b = e2.ntk(heavy_genotype)
        assert cache.misses > misses_before  # different key, recomputed
        assert a != b

    def test_differing_mode_misses(self, tiny_proxy_config, heavy_genotype):
        cache = IndicatorCache()
        e_batched = Engine(proxy_config=tiny_proxy_config, cache=cache)
        e_reference = Engine(proxy_config=tiny_proxy_config.reference(),
                             cache=cache)
        e_batched.ntk(heavy_genotype)
        misses_before = cache.misses
        e_reference.ntk(heavy_genotype)
        assert cache.misses > misses_before

    def test_differing_latency_precision_misses(self, heavy_genotype):
        cache = IndicatorCache()
        config = MacroConfig(init_channels=4, cells_per_stage=1, image_size=8)
        f32 = LatencyEstimator(config=config, precision="float32", cache=cache)
        i8 = LatencyEstimator(config=config, precision="int8", cache=cache)
        a = f32.estimate_ms(heavy_genotype)
        misses_before = cache.misses
        b = i8.estimate_ms(heavy_genotype)
        assert cache.misses > misses_before
        assert a != b

    def test_differing_device_misses(self, heavy_genotype):
        cache = IndicatorCache()
        config = MacroConfig(init_channels=4, cells_per_stage=1, image_size=8)
        m7 = LatencyEstimator(config=config, cache=cache)
        m4 = LatencyEstimator(NUCLEO_F411RE, config=config, cache=cache)
        m7.estimate_ms(heavy_genotype)
        misses_before = cache.misses
        m4.estimate_ms(heavy_genotype)
        assert cache.misses > misses_before


class TestLatencyFolding:
    def test_estimator_shares_engine_cache(self, tiny_proxy_config,
                                           heavy_genotype):
        """An estimator built by the engine writes the engine's cache, and
        the engine's latency lookup reuses the estimator's entries."""
        engine = Engine(proxy_config=tiny_proxy_config,
                        macro_config=MacroConfig(init_channels=4,
                                                 cells_per_stage=1,
                                                 image_size=8))
        value = engine.latency_ms(heavy_genotype)
        estimator = engine.latency_estimator
        assert estimator.cache is engine.cache
        hits_before = engine.cache.hits
        direct = estimator.estimate_ms(heavy_genotype)
        assert direct == value
        assert engine.cache.hits > hits_before

    def test_direct_estimate_does_not_canonicalize(self, tiny_proxy_config):
        """Dead conv edges are billed by the raw estimator (matching the
        on-board ground truth) but elided by the engine's canonical view."""
        dead_conv = Genotype(("nor_conv_3x3", "none", "none",
                              "none", "nor_conv_1x1", "nor_conv_3x3"))
        canon = canonicalize(dead_conv)
        assert canon != dead_conv
        config = MacroConfig(init_channels=4, cells_per_stage=1, image_size=8)
        engine = Engine(proxy_config=tiny_proxy_config, macro_config=config)
        estimator = engine.latency_estimator
        assert estimator.estimate_ms(dead_conv) > estimator.estimate_ms(canon)
        assert engine.latency_ms(dead_conv) == engine.latency_ms(canon)


class TestRepeatsReuse:
    def test_ntk_repeats_deterministic_and_finite(self, tiny_proxy_config,
                                                  heavy_genotype):
        cfg = dataclasses.replace(tiny_proxy_config, repeats=3)
        from repro.proxies.ntk import ntk_condition_number
        a = ntk_condition_number(heavy_genotype, cfg)
        b = ntk_condition_number(heavy_genotype, cfg)
        assert a == b
        assert np.isfinite(a) and a > 1.0

    def test_repeats_differ_from_single(self, tiny_proxy_config,
                                        heavy_genotype):
        from repro.proxies.ntk import ntk_condition_number
        cfg3 = dataclasses.replace(tiny_proxy_config, repeats=3)
        assert ntk_condition_number(heavy_genotype, cfg3) != \
            ntk_condition_number(heavy_genotype, tiny_proxy_config)

    def test_supplied_images_repeats_not_degenerate(self, tiny_proxy_config,
                                                    heavy_genotype, rng):
        """With a fixed user batch, repeats must still vary the network
        initialisation — otherwise the average is a silent no-op."""
        from repro.proxies.ntk import ntk_condition_number
        images = rng.normal(size=(6, 3, 8, 8))
        cfg2 = dataclasses.replace(tiny_proxy_config, repeats=2)
        single = ntk_condition_number(heavy_genotype, tiny_proxy_config,
                                      images=images)
        averaged = ntk_condition_number(heavy_genotype, cfg2, images=images)
        assert averaged != single


class TestBoundedCache:
    """LRU bound (``max_rows``): dirty rows are pinned, eviction is
    invisible to results, and flushes stay O(dirty delta)."""

    def test_evicts_oldest_clean_rows(self):
        cache = IndicatorCache(max_rows=3)
        for name in ("a", "b", "c"):
            cache.put(name, 1.0)
        cache.mark_clean()
        cache.put("d", 4.0)
        cache.mark_clean()
        assert len(cache) == 3
        assert "a" not in cache and "d" in cache
        assert cache.stats.evictions == 1

    def test_dirty_rows_never_evicted_before_flush(self):
        cache = IndicatorCache(max_rows=2)
        for i in range(5):
            cache.put(("dirty", i), float(i))
        # All five are unflushed: losing one would lose computed work,
        # so the bound is allowed to overshoot until the flush.
        assert len(cache) == 5
        assert cache.stats.evictions == 0
        assert len(cache.dirty_items()) == 5
        cache.mark_clean()
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_hits_refresh_recency(self):
        cache = IndicatorCache(max_rows=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.mark_clean()
        assert cache.lookup("a", lambda: -1.0) == 1.0  # promotes "a"
        cache.put("c", 3.0)
        cache.mark_clean()
        assert "a" in cache and "b" not in cache

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            IndicatorCache(max_rows=0)

    def test_eviction_recompute_is_bit_identical(
            self, tiny_proxy_config, shared_latency_estimator):
        """A max_rows=1 cache evicts (after simulated flushes) and
        recomputes constantly; every indicator must still match an
        unbounded run bit-for-bit — eviction may cost time, never
        correctness."""
        a = Genotype(("nor_conv_3x3", "none", "none",
                      "none", "nor_conv_1x1", "nor_conv_3x3"))
        b = Genotype(("nor_conv_1x1",) * 6)
        unbounded = Engine(proxy_config=tiny_proxy_config,
                           latency_estimator=shared_latency_estimator)
        bounded_cache = IndicatorCache(max_rows=1)
        bounded = Engine(proxy_config=tiny_proxy_config,
                         latency_estimator=shared_latency_estimator,
                         cache=bounded_cache)
        want = {g: unbounded.evaluate(g) for g in (a, b)}
        for _ in range(2):  # second pass re-evaluates after eviction
            for g in (a, b):
                assert bounded.evaluate(g) == want[g]
                bounded_cache.mark_clean()  # simulate a store flush
        assert bounded_cache.stats.evictions > 0
        assert len(bounded_cache) == 1

    def test_save_after_eviction_appends_exactly_the_dirty_delta(
            self, tmp_path):
        from repro.proxies.base import ProxyConfig
        from repro.runtime.store import RuntimeStore, cache_fingerprint
        from repro.searchspace.network import MacroConfig

        store = RuntimeStore(tmp_path / "store")
        fingerprint = cache_fingerprint(ProxyConfig(), MacroConfig.full())
        cache = IndicatorCache(max_rows=2)
        for i in range(10):
            cache.put(("row", i), float(i))
        assert store.save_cache(cache, fingerprint) == 10
        assert len(cache) == 2  # flush marked clean, LRU trimmed
        cache.put(("row", 10), 10.0)
        cache.put(("row", 11), 11.0)
        # Only the two new rows flush — evicted rows are already
        # persisted and must not be re-appended (or worse, required).
        assert store.save_cache(cache, fingerprint) == 2
        restored = IndicatorCache()
        assert store.load_cache_into(restored, fingerprint,
                                     strict=True) == 12
        assert dict(restored.items()) == {("row", i): float(i)
                                          for i in range(12)}
