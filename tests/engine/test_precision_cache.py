"""Precision keying: float32/float64 rows coexist without aliasing."""

import numpy as np
import pytest

from repro.engine.cache import IndicatorCache
from repro.engine.core import Engine
from repro.eval.benchconfig import reduced_proxy_config
from repro.runtime.store import RuntimeStore, cache_fingerprint
from repro.searchspace.genotype import Genotype

pytestmark = pytest.mark.precision


@pytest.fixture
def genotype():
    return Genotype.from_index(1462)


def test_engines_of_both_precisions_share_one_cache(genotype):
    """Same cache, different policies: distinct entries, no aliasing."""
    cache = IndicatorCache()
    config64 = reduced_proxy_config(seed=0)
    engine64 = Engine(proxy_config=config64, cache=cache)
    engine32 = Engine(proxy_config=config64.with_precision("float32"),
                      cache=cache)

    k64 = engine64.ntk(genotype)
    entries_after_64 = len(cache)
    k32 = engine32.ntk(genotype)
    assert len(cache) == entries_after_64 + 1  # new row, not a hit
    assert k32 != k64  # computed, not served from the float64 row

    # Re-reads on both engines are pure cache hits now.
    misses = cache.misses
    assert engine64.ntk(genotype) == k64
    assert engine32.ntk(genotype) == k32
    assert cache.misses == misses


def test_population_path_respects_precision_keys(genotype):
    cache = IndicatorCache()
    config64 = reduced_proxy_config(seed=0)
    engine64 = Engine(proxy_config=config64, cache=cache)
    engine32 = Engine(proxy_config=config64.with_precision("float32"),
                      cache=cache)
    table64 = engine64.evaluate_population([genotype])
    table32 = engine32.evaluate_population([genotype])
    k64 = table64.columns["ntk"][0]
    k32 = table32.columns["ntk"][0]
    assert k32 == pytest.approx(k64, rel=1e-3)
    assert k32 != k64
    # Batched population path agrees bit-for-bit with the scalar path.
    assert engine32.ntk(genotype) == k32


def test_store_fingerprints_split_by_precision(tmp_path, genotype):
    """One store directory, two precisions: separate files, no bleed."""
    store = RuntimeStore(tmp_path)
    config64 = reduced_proxy_config(seed=0)
    config32 = config64.with_precision("float32")
    macro = config64.macro_config()
    fp64 = cache_fingerprint(config64, macro)
    fp32 = cache_fingerprint(config32, macro)
    assert fp64 != fp32
    assert fp64["precision"] == "float64"
    assert fp32["precision"] == "float32"
    assert store.cache_dir(fp64) != store.cache_dir(fp32)

    engine64 = Engine(proxy_config=config64)
    engine64.ntk(genotype)
    store.save_cache(engine64.cache, fp64)

    # A float32 run warm-starts nothing from the float64 file...
    cold = IndicatorCache()
    assert store.load_cache_into(cold, fp32) == 0
    # ...while the float64 twin gets every row back.
    warm = IndicatorCache()
    assert store.load_cache_into(warm, fp64) == len(engine64.cache)

    # Both precisions persist side by side in one directory.
    engine32 = Engine(proxy_config=config32)
    engine32.ntk(genotype)
    store.save_cache(engine32.cache, fp32)
    assert store.cache_dir(fp64).exists()
    assert store.cache_dir(fp32).exists()
