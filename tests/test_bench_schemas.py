"""Tier-1 wiring for the BENCH artifact schema checker.

``benchmarks/`` is not a package and its ``bench_*.py`` files are not
collected by plain pytest (``python_files = test_*.py``), so the checker
is imported by path and driven here.  This keeps "a bench renamed a key"
failures inside the tier-1 lane instead of surfacing weeks later in a
reader.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.obs

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    path = REPO_ROOT / "benchmarks" / "check_bench_schemas.py"
    spec = importlib.util.spec_from_file_location("check_bench_schemas",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_repo_bench_artifacts_conform():
    problems = checker.check_bench_schemas()
    assert problems == []


def test_every_existing_artifact_has_a_registered_schema():
    present = {path.name for path in REPO_ROOT.glob("BENCH_*.json")}
    assert present <= set(checker.SCHEMAS)


def test_missing_required_key_is_reported(tmp_path):
    (tmp_path / "BENCH_faults.json").write_text(
        json.dumps({"bench_scale": "fast", "overhead": {}}),
        encoding="utf-8")
    problems = checker.check_bench_schemas(tmp_path)
    assert len(problems) == 1
    assert "faulted" in problems[0]


def test_unknown_artifact_is_reported(tmp_path):
    (tmp_path / "BENCH_mystery.json").write_text("{}", encoding="utf-8")
    problems = checker.check_bench_schemas(tmp_path)
    assert any("unknown BENCH artifact" in p for p in problems)


def test_nan_and_infinity_are_rejected(tmp_path):
    (tmp_path / "BENCH_precision.json").write_text(
        '{"bench_scale": "fast", "kernel": NaN, "population": 1, '
        '"rank_agreement": Infinity}',
        encoding="utf-8")
    problems = checker.check_bench_schemas(tmp_path)
    assert len(problems) == 1
    assert "NaN" in problems[0] or "non-JSON constant" in problems[0]


def test_non_object_top_level_is_rejected(tmp_path):
    (tmp_path / "BENCH_store.json").write_text("[1, 2]", encoding="utf-8")
    problems = checker.check_bench_schemas(tmp_path)
    assert any("JSON object" in p for p in problems)


def test_not_yet_generated_artifacts_are_skipped(tmp_path):
    assert checker.check_bench_schemas(tmp_path) == []


def test_standalone_main_passes_on_this_repo(capsys):
    assert checker.main() == 0
    assert "ok:" in capsys.readouterr().out
