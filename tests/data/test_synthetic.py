"""Synthetic dataset generator."""

import numpy as np
import pytest

from repro.data.synthetic import DATASETS, SyntheticImageDataset, get_dataset
from repro.errors import BenchmarkDataError


class TestSpecs:
    def test_registered_datasets_match_nb201(self):
        assert DATASETS["cifar10"].num_classes == 10
        assert DATASETS["cifar100"].num_classes == 100
        assert DATASETS["imagenet16-120"].num_classes == 120
        assert DATASETS["imagenet16-120"].image_size == 16

    def test_input_shape(self):
        assert DATASETS["cifar10"].input_shape == (3, 32, 32)

    def test_get_dataset_case_insensitive(self):
        assert get_dataset("CIFAR10").spec.name == "cifar10"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkDataError):
            get_dataset("fashion-mnist")


class TestBatches:
    def test_shapes_and_labels(self):
        ds = get_dataset("cifar10")
        x, y = ds.batch(16, rng=0)
        assert x.shape == (16, 3, 32, 32)
        assert y.shape == (16,)
        assert set(y) <= set(range(10))

    def test_balanced_labels_cycle(self):
        ds = get_dataset("cifar10")
        _, y = ds.batch(20, rng=0, balanced=True)
        assert list(y[:10]) == list(range(10))

    def test_unbalanced_labels_random(self):
        ds = get_dataset("cifar10")
        _, y = ds.batch(50, rng=0, balanced=False)
        assert len(set(y)) > 1

    def test_deterministic_given_rng(self):
        ds = get_dataset("cifar10")
        x1, _ = ds.batch(8, rng=42)
        x2, _ = ds.batch(8, rng=42)
        assert np.array_equal(x1, x2)

    def test_standardised(self):
        x, _ = get_dataset("cifar100").batch(64, rng=1)
        assert abs(x.mean()) < 1e-6
        assert abs(x.std() - 1.0) < 1e-3

    def test_class_structure_present(self):
        # Same-class samples are more similar than cross-class samples.
        ds = get_dataset("cifar10", seed=0)
        x, y = ds.batch(40, rng=2, balanced=True)
        same, cross = [], []
        for i in range(len(y)):
            for j in range(i + 1, len(y)):
                dist = np.linalg.norm(x[i] - x[j])
                (same if y[i] == y[j] else cross).append(dist)
        assert np.mean(same) < np.mean(cross)

    def test_invalid_batch_size(self):
        with pytest.raises(BenchmarkDataError):
            get_dataset("cifar10").batch(0)

    def test_imagenet16_small_images(self):
        x, _ = get_dataset("imagenet16-120").batch(4, rng=0)
        assert x.shape == (4, 3, 16, 16)
