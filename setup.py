"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs PEP-660 wheels; offline images may lack `wheel`,
in which case `python setup.py develop` installs the same editable package.
"""
from setuptools import setup

setup()
